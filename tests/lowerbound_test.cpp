// Section VIII machinery: gadget structure, the Lemma 4 separation
// (b_P minimal iff the instance is disjoint), the Lemma 5 single-edge case,
// and disjointness-instance generation.
#include <gtest/gtest.h>

#include "centrality/current_flow_exact.hpp"
#include "common/rng.hpp"
#include "graph/properties.hpp"
#include "lowerbound/disjointness.hpp"
#include "lowerbound/gadget.hpp"

namespace rwbc {
namespace {

double exact_b_p(const GadgetLayout& layout) {
  const auto b = current_flow_betweenness(layout.graph);
  return b[static_cast<std::size_t>(layout.p)];
}

TEST(Gadget, StructureMatchesFig2) {
  // M = 4, N = 2 — the paper's own illustration size.
  const std::vector<std::vector<int>> x{{0, 1}, {0, 1}};
  const std::vector<std::vector<int>> y{{2, 3}, {2, 3}};
  const GadgetLayout layout = build_disjointness_gadget(4, x, y);
  const Graph& g = layout.graph;
  EXPECT_EQ(g.node_count(), 4 + 4 + 2 + 2 + 3);  // 2M + 2N + 3
  EXPECT_TRUE(is_connected(g));
  // Rails.
  for (std::size_t i = 0; i < 4; ++i) {
    EXPECT_TRUE(g.has_edge(layout.left[i], layout.right[i]));
    EXPECT_TRUE(g.has_edge(layout.a, layout.left[i]));
    EXPECT_TRUE(g.has_edge(layout.b, layout.right[i]));
  }
  EXPECT_TRUE(g.has_edge(layout.a, layout.b));
  // S_i joins X_i; T_j joins complement(Y_j) = {0, 1}.
  for (std::size_t i = 0; i < 2; ++i) {
    EXPECT_TRUE(g.has_edge(layout.sources[i], layout.left[0]));
    EXPECT_TRUE(g.has_edge(layout.sources[i], layout.left[1]));
    EXPECT_FALSE(g.has_edge(layout.sources[i], layout.left[2]));
    EXPECT_TRUE(g.has_edge(layout.sinks[i], layout.right[0]));
    EXPECT_TRUE(g.has_edge(layout.sinks[i], layout.right[1]));
    EXPECT_FALSE(g.has_edge(layout.sinks[i], layout.right[2]));
    EXPECT_TRUE(g.has_edge(layout.p, layout.sources[i]));
    EXPECT_TRUE(g.has_edge(layout.p, layout.sinks[i]));
  }
}

TEST(Gadget, CutEdgesAreTheRailsPlusAB) {
  const std::vector<std::vector<int>> x{{0, 1}};
  const std::vector<std::vector<int>> y{{2, 3}};
  const GadgetLayout layout = build_disjointness_gadget(4, x, y);
  const auto cut = gadget_cut_edges(layout);
  EXPECT_EQ(cut.size(), 5u);  // M rails + A-B
  for (const Edge& e : cut) {
    EXPECT_TRUE(layout.graph.has_edge(e.u, e.v));
  }
}

TEST(Gadget, Lemma5SingleEdgeCase) {
  // N = 1, single links: S1 - L0 fixed; b_P is minimal when T1 - R0
  // (i.e. S1 "=" T1) compared against every other attachment.
  const int m = 4;
  const std::vector<std::vector<int>> s{{0}};
  const double matched = exact_b_p(build_gadget(m, s, {{0}}));
  for (int other = 1; other < m; ++other) {
    const double mismatched = exact_b_p(build_gadget(m, s, {{other}}));
    EXPECT_LT(matched, mismatched) << "T1 attached to rail " << other;
  }
}

TEST(Gadget, Lemma4SeparationOnPaperSize) {
  // Disjoint wiring (X = {0,1}, Y = {2,3} so T joins {0,1}) vs an
  // intersecting one: b_P must be strictly smaller for the disjoint case.
  const std::vector<std::vector<int>> x{{0, 1}, {0, 1}};
  const std::vector<std::vector<int>> y_disjoint{{2, 3}, {2, 3}};
  const std::vector<std::vector<int>> y_hit{{0, 3}, {2, 3}};
  const double b_disjoint =
      exact_b_p(build_disjointness_gadget(4, x, y_disjoint));
  const double b_hit = exact_b_p(build_disjointness_gadget(4, x, y_hit));
  EXPECT_LT(b_disjoint, b_hit);
}

class Lemma4Sweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(Lemma4Sweep, DisjointInstancesMinimiseBp) {
  Rng rng(GetParam());
  const int rails = 6, family = 3;
  const DisjointnessInstance yes = make_disjoint_instance(rails, family, rng);
  const DisjointnessInstance no =
      make_intersecting_instance(rails, family, rng);
  ASSERT_TRUE(instance_is_disjoint(yes));
  ASSERT_FALSE(instance_is_disjoint(no));
  const double b_yes =
      exact_b_p(build_disjointness_gadget(rails, yes.x, yes.y));
  const double b_no = exact_b_p(build_disjointness_gadget(rails, no.x, no.y));
  EXPECT_LT(b_yes, b_no);
}

INSTANTIATE_TEST_SUITE_P(Seeds, Lemma4Sweep,
                         ::testing::Values(1u, 2u, 3u, 4u, 5u, 6u, 7u, 8u));

TEST(Disjointness, GeneratorInvariants) {
  Rng rng(9);
  const auto yes = make_disjoint_instance(8, 4, rng);
  EXPECT_TRUE(instance_is_disjoint(yes));
  EXPECT_EQ(yes.x.size(), 4u);
  for (const auto& xi : yes.x) EXPECT_EQ(xi.size(), 4u);
  const auto no = make_intersecting_instance(8, 4, rng, 2);
  EXPECT_FALSE(instance_is_disjoint(no));
  for (const auto& yj : no.y) EXPECT_EQ(yj.size(), 4u);
}

TEST(Disjointness, BoundGrowsAsNLogN) {
  EXPECT_DOUBLE_EQ(disjointness_bits_lower_bound(2), 2.0);
  EXPECT_GT(disjointness_bits_lower_bound(64),
            8 * disjointness_bits_lower_bound(4));
}

TEST(Gadget, ValidationRejectsBadWiring) {
  EXPECT_THROW(build_gadget(4, {}, {{0}}), Error);
  EXPECT_THROW(build_gadget(4, {{0}}, {{}}), Error);
  EXPECT_THROW(build_gadget(4, {{4}}, {{0}}), Error);
  EXPECT_THROW(build_disjointness_gadget(3, {{0}}, {{0}}), Error);  // odd M
  EXPECT_THROW(build_disjointness_gadget(4, {{0}}, {{0, 1}}), Error);
  EXPECT_THROW(build_disjointness_gadget(4, {{0, 1}}, {{0, 0}}), Error);
}

}  // namespace
}  // namespace rwbc
