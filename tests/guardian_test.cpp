// Differential suite for the crash-lossless guardian handoff (DESIGN.md
// §10).
//
// The protocol's auditable contract, in decreasing strength:
//
//   1. Fault-free, wpepr = 1: guardian-on runs produce BIT-IDENTICAL scores
//      and scaled visits to guardian-off runs.  Replica frames ride an
//      urgent side channel outside the data budget and adoption logic is
//      gated on fault-tolerant mode, so turning the guardian on may only
//      add messages, never perturb a single walk step.
//   2. Crash-only plans with connected survivors, guardian + reliable:
//      ZERO loss — every one of the (n-1)*K walks is accounted as died,
//      none abandoned, none lost — and termination detection still
//      converges (no deadline backstop).
//   3. Any plan: the accounting identity expected = died + abandoned + lost
//      holds with lost >= 0 — a negative residual would mean a walk was
//      double-counted (e.g. adopted AND written off at the deadline, the
//      regression the ReliableGiveUp.sent flag exists to prevent).
//   4. The whole machinery is deterministic: bit-identical across thread
//      counts and across a checkpoint/resume cut, crash plans included.
//
// Property tests pin the replica-delta codec the ledgers depend on:
// canonical bytes (a pure function of the op multisets), exact closed-form
// frame sizing, round-trips, and corruption rejected as rwbc::Error.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstring>
#include <filesystem>
#include <string>
#include <tuple>
#include <vector>

#include "common/bitcodec.hpp"
#include "common/error.hpp"
#include "common/rng.hpp"
#include "congest/faults.hpp"
#include "graph/generators.hpp"
#include "rwbc/distributed_rwbc.hpp"
#include "rwbc/walk_token.hpp"

namespace rwbc {
namespace {

const int kThreadCounts[] = {1, 2, 8, -1};
const std::uint64_t kSeeds[] = {0u, 1u, 0xdeadbeefULL,
                                0xffffffffffffffffULL};

Graph family_graph(const std::string& family, std::uint64_t seed) {
  Rng rng(seed ^ 0x9e3779b97f4a7c15ULL);
  if (family == "er") return make_erdos_renyi(14, 0.3, rng);
  if (family == "ba") return make_barabasi_albert(14, 2, rng);
  if (family == "ws") return make_watts_strogatz(14, 4, 0.3, rng);
  if (family == "grid") return make_grid(3, 5);
  if (family == "tree") return make_binary_tree(13);
  if (family == "barbell") return make_barbell(4, 3);
  if (family == "cycle") return make_cycle(14);
  throw std::runtime_error("unknown family " + family);
}

DistributedRwbcOptions base_options(std::uint64_t seed, bool guardian,
                                    int threads) {
  DistributedRwbcOptions options;
  options.walks_per_source = 4;
  options.cutoff = 20;
  options.guardian_handoff = guardian;
  options.congest.seed = seed;
  options.congest.num_threads = threads;
  return options;
}

/// A crash plan every contract test agrees on: the highest-id node whose
/// removal keeps the survivors connected (so contract 2 applies), never
/// the leader (node 0 roots the sweep tree) and never the forced target
/// (its counter is the estimator itself).  Crashing at round 6 lands
/// mid-counting: walks are in flight and in pools.
FaultPlan crash_plan(const Graph& g, NodeId forced_target,
                     std::uint64_t round = 6) {
  for (NodeId v = g.node_count() - 1; v > 0; --v) {
    if (v == forced_target) continue;
    FaultPlan plan;
    plan.crashes.push_back({v, round});
    if (survivors_connected(g, plan)) return plan;
  }
  throw std::runtime_error("no crashable node found");
}

/// Mirror of CountingNode::re_anchor's lex rule, conservatively: a node
/// whose sweep parent dies may re-hang only onto a live neighbour strictly
/// shallower in (BFS depth, id) order — anything else could cycle the
/// tree.  If every potential child of the crashed node (neighbour one
/// level deeper) has such an escape, DONE detection survives the crash;
/// otherwise an orphaned subtree's sweep reports never reach the root and
/// the run legitimately falls back to the deadline backstop.  (Losslessness
/// is unaffected either way — only termination latency degrades; cycle
/// graphs are the canonical unrepairable case.)
bool sweep_tree_repairable(const Graph& g, NodeId crashed) {
  std::vector<int> depth(static_cast<std::size_t>(g.node_count()), -1);
  std::vector<NodeId> queue{0};
  depth[0] = 0;
  for (std::size_t head = 0; head < queue.size(); ++head) {
    for (NodeId u : g.neighbors(queue[head])) {
      if (depth[static_cast<std::size_t>(u)] < 0) {
        depth[static_cast<std::size_t>(u)] =
            depth[static_cast<std::size_t>(queue[head])] + 1;
        queue.push_back(u);
      }
    }
  }
  const auto key = [&depth](NodeId v) {
    return std::make_pair(depth[static_cast<std::size_t>(v)], v);
  };
  for (NodeId v : g.neighbors(crashed)) {
    if (key(v) <= key(crashed)) continue;  // not a child of the dead node
    bool escape = false;
    for (NodeId u : g.neighbors(v)) {
      if (u != crashed && key(u) < key(v)) {
        escape = true;
        break;
      }
    }
    if (!escape) return false;
  }
  return true;
}

DistributedRwbcOptions crash_options(const Graph& g, std::uint64_t seed,
                                     bool guardian, bool reliable,
                                     int threads) {
  DistributedRwbcOptions options = base_options(seed, guardian, threads);
  options.forced_target = 1;
  options.congest.faults = crash_plan(g, options.forced_target);
  options.congest.faults.seed = seed ^ 0xfau;
  options.reliable_transport = reliable;
  options.fault_deadline_rounds = 600;
  return options;
}

std::uint64_t run_digest(const DistributedRwbcResult& result) {
  std::uint64_t d = 0x5eedULL;
  const auto fold = [&d](std::uint64_t v) {
    std::uint64_t state = d ^ v;
    d = splitmix64(state);
  };
  for (double s : result.report.scores) {
    std::uint64_t bits;
    std::memcpy(&bits, &s, sizeof(bits));
    fold(bits);
  }
  for (std::size_t r = 0; r < result.scaled_visits.rows(); ++r) {
    for (std::size_t c = 0; c < result.scaled_visits.cols(); ++c) {
      std::uint64_t bits;
      const double v = result.scaled_visits(r, c);
      std::memcpy(&bits, &v, sizeof(bits));
      fold(bits);
    }
  }
  fold(result.report.metrics.rounds);
  fold(result.report.metrics.total_messages);
  fold(result.report.metrics.total_bits);
  fold(result.report.metrics.replica_messages);
  fold(result.report.metrics.replica_bits);
  fold(result.report.walks.died);
  fold(result.report.walks.adopted);
  fold(result.report.walks.abandoned);
  fold(static_cast<std::uint64_t>(result.report.walks.lost));
  return d;
}

using FamilySeed = std::tuple<const char*, std::uint64_t>;

class GuardianSweep : public ::testing::TestWithParam<FamilySeed> {};

// Contract 1: fault-free transparency.  The guardian-off serial run is the
// golden; guardian-on must reproduce its scores and visits bit for bit at
// every thread count (rounds/messages legitimately differ — the replica
// channel is extra traffic, never extra influence).
TEST_P(GuardianSweep, FaultFreeGuardianIsScoreTransparent) {
  const auto& [family, seed] = GetParam();
  const Graph g = family_graph(family, seed);
  const auto golden = distributed_rwbc(g, base_options(seed, false, 0));
  for (int threads : kThreadCounts) {
    const auto got = distributed_rwbc(g, base_options(seed, true, threads));
    const std::string label =
        std::string(family) + " threads=" + std::to_string(threads);
    EXPECT_EQ(golden.target, got.target) << label;
    EXPECT_EQ(golden.report.scores, got.report.scores) << label;
    EXPECT_EQ(golden.scaled_visits, got.scaled_visits) << label;
    EXPECT_GT(got.counting_metrics.replica_messages, 0u) << label;
    EXPECT_TRUE(got.report.walks.exact()) << label;
    EXPECT_EQ(got.report.walks.adopted, 0u) << label;
  }
}

// Contract 2: crash-lossless.  One mid-phase crash with connected
// survivors, guardian + reliable: the walk census must balance exactly —
// nothing lost, nothing abandoned, the crashed node's mirrored walks
// adopted and finished by its guardian.  When the sweep tree is
// repairable the phase must also terminate by DONE detection, not the
// deadline backstop; unrepairable topologies (e.g. a cycle, where the
// orphan's only live neighbour is its own child) stay lossless but are
// allowed to fall back to the deadline.
TEST_P(GuardianSweep, CrashWithConnectedSurvivorsLosesNothing) {
  const auto& [family, seed] = GetParam();
  const Graph g = family_graph(family, seed);
  const auto options = crash_options(g, seed, true, true, 0);
  const auto result = distributed_rwbc(g, options);
  const WalkAccounting& walks = result.report.walks;
  EXPECT_TRUE(walks.enabled);
  EXPECT_EQ(walks.lost, 0) << family;
  EXPECT_EQ(walks.abandoned, 0u) << family;
  EXPECT_EQ(walks.died, walks.expected) << family;
  if (sweep_tree_repairable(g, options.congest.faults.crashes[0].node)) {
    EXPECT_LT(result.counting_metrics.rounds, options.fault_deadline_rounds)
        << family << ": terminated by deadline backstop, not DONE detection";
  }
}

// Guardian-off under the exact same crash plan loses at least as many
// walks — the protocol never makes a crash worse, and on plans where the
// crashed node held or carried walks it is strictly better.
TEST_P(GuardianSweep, GuardianNeverLosesMoreThanBaseline) {
  const auto& [family, seed] = GetParam();
  const Graph g = family_graph(family, seed);
  const auto with = distributed_rwbc(g, crash_options(g, seed, true, true, 0));
  const auto without =
      distributed_rwbc(g, crash_options(g, seed, false, true, 0));
  EXPECT_GE(without.report.walks.lost +
                static_cast<std::int64_t>(without.report.walks.abandoned),
            with.report.walks.lost +
                static_cast<std::int64_t>(with.report.walks.abandoned))
      << family;
}

// Contract 4a: crash + guardian + reliable is bit-identical across thread
// counts, accounting included.
TEST_P(GuardianSweep, CrashRunsBitIdenticalAcrossThreads) {
  const auto& [family, seed] = GetParam();
  const Graph g = family_graph(family, seed);
  const auto golden = distributed_rwbc(g, crash_options(g, seed, true, true, 0));
  const std::uint64_t want = run_digest(golden);
  for (int threads : kThreadCounts) {
    const auto got =
        distributed_rwbc(g, crash_options(g, seed, true, true, threads));
    EXPECT_EQ(want, run_digest(got))
        << family << " threads=" << threads;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, GuardianSweep,
    ::testing::Combine(::testing::Values("er", "ba", "ws", "grid", "tree",
                                         "barbell", "cycle"),
                       ::testing::ValuesIn(kSeeds)),
    [](const auto& suite_info) {
      return std::string(std::get<0>(suite_info.param)) + "_s" +
             std::to_string(std::get<1>(suite_info.param) & 0xffffffffULL);
    });

// Contract 3 / the deadline regression (satellite 1): squeeze the deadline
// so the backstop fires while adopted walks are still in flight.  Walks
// written off as abandoned must be exactly the never-transmitted ones —
// an adopted walk also counted at the deadline would drive the residual
// negative.  Sweep deadlines across the whole phase so the cut lands in
// every protocol state.
TEST(GuardianDeadline, AdoptedWalksAreNeverDoubleCounted) {
  const Graph g = family_graph("ba", 1);
  for (std::uint64_t deadline : {20u, 30u, 40u, 60u, 90u, 140u, 200u}) {
    for (bool reliable : {false, true}) {
      auto options = crash_options(g, 1, true, reliable, 0);
      options.fault_deadline_rounds = deadline;
      const auto result = distributed_rwbc(g, options);
      const WalkAccounting& walks = result.report.walks;
      EXPECT_GE(walks.lost, 0)
          << "deadline=" << deadline << " reliable=" << reliable
          << ": negative residual means a walk was counted twice";
      EXPECT_EQ(static_cast<std::int64_t>(walks.expected),
                static_cast<std::int64_t>(walks.died) +
                    static_cast<std::int64_t>(walks.abandoned) + walks.lost)
          << "deadline=" << deadline << " reliable=" << reliable;
    }
  }
}

// Without the reliable transport the guardian still adopts mirrored walks
// (silence timeout instead of dead link slots) and the books still
// balance; in-flight tokens dropped on the dead node's edges are honestly
// reported as lost, never silently absorbed.
TEST(GuardianDeadline, SilenceTimeoutAdoptionKeepsBooksBalanced) {
  const Graph g = family_graph("ws", 2);
  const auto result = distributed_rwbc(g, crash_options(g, 2, true, false, 0));
  const WalkAccounting& walks = result.report.walks;
  EXPECT_GE(walks.lost, 0);
  EXPECT_EQ(static_cast<std::int64_t>(walks.expected),
            static_cast<std::int64_t>(walks.died) +
                static_cast<std::int64_t>(walks.abandoned) + walks.lost);
}

// Contract 4b: a guardian crash run cut by a checkpoint and resumed is
// bit-identical to the uninterrupted one — the ward ledgers, replica
// queues, anchor state, and the give-up `sent` flags all survive the
// snapshot round trip.
TEST(GuardianCheckpoint, CrashRunResumesBitIdentical) {
  const Graph g = family_graph("er", 3);
  namespace fs = std::filesystem;
  const fs::path dir =
      fs::temp_directory_path() / "rwbc_guardian_ckpt_test";
  fs::remove_all(dir);
  auto options = crash_options(g, 3, true, true, 0);
  const auto golden = distributed_rwbc(g, options);

  options.checkpoint.dir = dir.string();
  options.checkpoint.interval = 10;
  const auto checkpointed = distributed_rwbc(g, options);
  EXPECT_EQ(run_digest(golden), run_digest(checkpointed)) << "writer run";

  options.checkpoint.interval = 0;
  options.checkpoint.resume = true;
  for (int threads : kThreadCounts) {
    options.congest.num_threads = threads;
    const auto resumed = distributed_rwbc(g, options);
    EXPECT_GT(resumed.report.resumed_from_round, 0u);
    EXPECT_EQ(golden.report.scores, resumed.report.scores)
        << "threads=" << threads;
    EXPECT_EQ(golden.scaled_visits, resumed.scaled_visits)
        << "threads=" << threads;
    EXPECT_EQ(golden.report.walks.died, resumed.report.walks.died)
        << "threads=" << threads;
    EXPECT_EQ(golden.report.walks.adopted, resumed.report.walks.adopted)
        << "threads=" << threads;
  }
  fs::remove_all(dir);
}

// Guardian runs refuse to resume from a guardian-off snapshot (and vice
// versa) instead of silently misreading the stream.  Interval 50 keeps
// every snapshot inside the counting phase (the computing phase is ~n+2
// rounds, too short to reach the first phase-local snapshot round), so the
// resume is guaranteed to read the counting nodes' guardian block.
TEST(GuardianCheckpoint, RejectsGuardianFlagMismatch) {
  const Graph g = family_graph("grid", 0);
  namespace fs = std::filesystem;
  const fs::path dir =
      fs::temp_directory_path() / "rwbc_guardian_mismatch_test";
  fs::remove_all(dir);
  auto options = crash_options(g, 0, false, true, 0);
  options.checkpoint.dir = dir.string();
  options.checkpoint.interval = 50;
  (void)distributed_rwbc(g, options);

  options.checkpoint.interval = 0;
  options.checkpoint.resume = true;
  // Matching flags resume fine from a mid-counting snapshot...
  const auto resumed = distributed_rwbc(g, options);
  ASSERT_GT(resumed.report.resumed_from_round, 0u);
  // ...but a flipped guardian flag is a different wire format and must be
  // rejected, not misread.
  options.guardian_handoff = true;
  EXPECT_THROW((void)distributed_rwbc(g, options), Error);
  fs::remove_all(dir);
}

// --- Replica-delta codec properties -------------------------------------

ReplicaDelta random_delta(Rng& rng, NodeId n, std::uint64_t cutoff,
                          std::uint64_t max_side) {
  ReplicaDelta delta;
  delta.epoch = rng.next_below(256);
  delta.snapshot = rng.next_below(2) == 0;
  delta.final_frame = rng.next_below(8) == 0;
  delta.deaths = rng.next_below(4 * static_cast<std::uint64_t>(n));
  const auto fill = [&](std::vector<WalkToken>& out) {
    const std::size_t count = static_cast<std::size_t>(
        rng.next_below(max_side + 1));
    for (std::size_t i = 0; i < count; ++i) {
      out.push_back(WalkToken{static_cast<NodeId>(rng.next_below(n)),
                              rng.next_below(cutoff + 1)});
    }
  };
  fill(delta.adds);
  fill(delta.removes);
  return delta;
}

TEST(ReplicaDeltaCodec, RoundTripsAndMatchesClosedFormSize) {
  const NodeId n = 300;
  const std::uint64_t cutoff = 40;
  const ReplicaDeltaWire wire(n, cutoff, 4);
  Rng rng(77);
  for (int trial = 0; trial < 300; ++trial) {
    ReplicaDelta delta = random_delta(rng, n, cutoff, 12);
    BitWriter w;
    wire.encode(w, delta);
    EXPECT_EQ(w.bit_count(),
              wire.frame_bits(delta.adds.size(), delta.removes.size()))
        << "trial " << trial;
    BitReader r(w.bytes(), w.bit_count());
    EXPECT_EQ(r.read(wire.type_bits),
              static_cast<std::uint64_t>(CountingMsg::kReplicaDelta));
    const ReplicaDelta back = wire.decode(r);
    EXPECT_EQ(delta.epoch & 0xff, back.epoch) << "trial " << trial;
    EXPECT_EQ(delta.snapshot, back.snapshot) << "trial " << trial;
    EXPECT_EQ(delta.final_frame, back.final_frame) << "trial " << trial;
    EXPECT_EQ(delta.deaths, back.deaths) << "trial " << trial;
    // encode() sorts in place, so element-wise equality checks canonical
    // order round-trips exactly.
    ASSERT_EQ(delta.adds.size(), back.adds.size()) << "trial " << trial;
    for (std::size_t i = 0; i < delta.adds.size(); ++i) {
      EXPECT_EQ(delta.adds[i].source, back.adds[i].source);
      EXPECT_EQ(delta.adds[i].remaining, back.adds[i].remaining);
    }
    ASSERT_EQ(delta.removes.size(), back.removes.size()) << "trial " << trial;
    for (std::size_t i = 0; i < delta.removes.size(); ++i) {
      EXPECT_EQ(delta.removes[i].source, back.removes[i].source);
      EXPECT_EQ(delta.removes[i].remaining, back.removes[i].remaining);
    }
  }
}

// The wire bytes are a pure function of the op MULTISETS: shuffling either
// list before encoding never changes a byte.  Ledger reconciliation relies
// on this — two wards holding the same walks send the same frames.
TEST(ReplicaDeltaCodec, ShuffledOpOrderNeverChangesPayloadBytes) {
  const NodeId n = 300;
  const std::uint64_t cutoff = 40;
  const ReplicaDeltaWire wire(n, cutoff, 4);
  Rng rng(78);
  for (int trial = 0; trial < 100; ++trial) {
    const ReplicaDelta delta = random_delta(rng, n, cutoff, 10);
    BitWriter golden;
    {
      ReplicaDelta copy = delta;
      wire.encode(golden, copy);
    }
    for (int shuffle = 0; shuffle < 8; ++shuffle) {
      ReplicaDelta copy = delta;
      const auto mix = [&](std::vector<WalkToken>& v) {
        for (std::size_t i = v.size(); i > 1; --i) {
          std::swap(v[i - 1], v[rng.next_below(i)]);
        }
      };
      mix(copy.adds);
      mix(copy.removes);
      BitWriter w;
      wire.encode(w, copy);
      ASSERT_EQ(w.bytes(), golden.bytes())
          << "trial " << trial << " shuffle " << shuffle;
    }
  }
}

// Corruption is rejected as a clean rwbc::Error, never undefined state:
// truncation at every bit boundary, plus out-of-range fields a truncation
// cannot produce (oversized death counts, source ids past n, lengths past
// the cutoff).
TEST(ReplicaDeltaCodec, CorruptFramesThrowCleanErrors) {
  const NodeId n = 14;
  const std::uint64_t cutoff = 20;
  const ReplicaDeltaWire wire(n, cutoff, 4);
  ReplicaDelta delta;
  delta.epoch = 3;
  delta.deaths = 9;
  delta.adds = {WalkToken{2, 5}, WalkToken{7, 1}, WalkToken{13, 20}};
  delta.removes = {WalkToken{2, 4}};
  BitWriter w;
  wire.encode(w, delta);
  const auto decode_bits = [&](const std::vector<std::uint8_t>& bytes,
                               int bits) {
    BitReader r(bytes, bits);
    (void)r.read(wire.type_bits);
    return wire.decode(r);
  };
  // Every proper prefix must throw (a shorter frame is only legal if the
  // gamma counts happen to describe it, impossible here: the token counts
  // in the header pin the exact length).
  for (int bits = wire.type_bits; bits < w.bit_count(); ++bits) {
    EXPECT_THROW((void)decode_bits(w.bytes(), bits), Error)
        << "prefix of " << bits << " bits";
  }
  // Out-of-range fields: rebuild frames that are bitwise well-formed but
  // semantically invalid.
  {
    // A death count > max_tokens = 56.  count_bits = bits_for(57) = 6, so
    // 57 is representable in the field yet semantically invalid — build
    // the frame by hand to plant it.
    BitWriter bad;
    bad.write(static_cast<std::uint64_t>(CountingMsg::kReplicaDelta),
              wire.type_bits);
    bad.write(0, ReplicaDeltaWire::kEpochBits);
    bad.write(0, 1);  // snapshot
    bad.write(0, 1);  // final
    bad.write(wire.max_tokens + 1, wire.count_bits);
    write_gamma(bad, 1);  // zero adds
    write_gamma(bad, 1);  // zero removes
    BitReader r(bad.bytes(), bad.bit_count());
    (void)r.read(wire.type_bits);
    EXPECT_THROW((void)wire.decode(r), Error);
  }
  {
    // A source id >= n: encode with a wire sized for a larger graph and
    // decode with the strict one; id_bits match when both round up to the
    // same width (14 -> 4 bits, 15 -> 4 bits).
    const ReplicaDeltaWire loose(15, cutoff, 4);
    ASSERT_EQ(loose.id_bits, wire.id_bits);
    BitWriter bad;
    ReplicaDelta d;
    d.adds = {WalkToken{14, 5}};
    loose.encode(bad, d);
    BitReader r(bad.bytes(), bad.bit_count());
    (void)r.read(wire.type_bits);
    EXPECT_THROW((void)wire.decode(r), Error);
  }
  {
    // A remaining length > cutoff, same trick on the length axis
    // (cutoff 20 -> 5 bits, values up to 31 encodable).
    const ReplicaDeltaWire loose(n, 30, 4);
    ASSERT_EQ(loose.length_bits, wire.length_bits);
    BitWriter bad;
    ReplicaDelta d;
    d.adds = {WalkToken{2, 25}};
    loose.encode(bad, d);
    BitReader r(bad.bytes(), bad.bit_count());
    (void)r.read(wire.type_bits);
    EXPECT_THROW((void)wire.decode(r), Error);
  }
}

// max_ops_for_budget: never zero (a backlogged ward must make progress),
// monotone in the budget, and exact — the returned count fits, one more
// does not (unless capped by max_tokens).
TEST(ReplicaDeltaCodec, MaxOpsForBudgetIsExactAndMonotone) {
  const ReplicaDeltaWire wire(200, 64, 8);
  std::uint64_t prev = 1;
  for (std::uint64_t budget = 0; budget < 2048; budget += 13) {
    const std::uint64_t ops = wire.max_ops_for_budget(budget);
    EXPECT_GE(ops, 1u);
    EXPECT_GE(ops, prev);
    if (ops > 1) {
      EXPECT_LE(static_cast<std::uint64_t>(wire.frame_bits(ops, 0)), budget);
    }
    if (ops < wire.max_tokens) {
      EXPECT_GT(static_cast<std::uint64_t>(wire.frame_bits(ops + 1, 0)),
                budget);
    }
    prev = ops;
  }
}

}  // namespace
}  // namespace rwbc
