// End-to-end tests of the distributed pipeline: accuracy against the exact
// solver, CONGEST compliance, per-phase metrics, determinism, and the
// estimator identity between the distributed counts and exact potentials.
#include <gtest/gtest.h>

#include "centrality/current_flow_exact.hpp"
#include "centrality/ranking.hpp"
#include "common/stats.hpp"
#include "graph/generators.hpp"
#include "rwbc/distributed_rwbc.hpp"

namespace rwbc {
namespace {

DistributedRwbcOptions accurate_options(std::uint64_t seed) {
  DistributedRwbcOptions options;
  options.walks_per_source = 3000;
  options.cutoff = 400;
  options.congest.seed = seed;
  // These runs crank K far beyond Theorem 3's O(log n) to pin statistical
  // error; count messages then need log K extra bits, so the budget floor
  // rises accordingly (the theorem-parameter runs keep the default floor).
  options.congest.bit_floor = 128;
  return options;
}

TEST(DistributedRwbc, MatchesExactOnCompleteGraph) {
  const Graph g = make_complete(5);
  const auto result = distributed_rwbc(g, accurate_options(1));
  const auto exact = current_flow_betweenness(g);
  EXPECT_LT(max_relative_error(exact, result.report.scores), 0.05);
}

TEST(DistributedRwbc, MatchesExactOnPath) {
  const Graph g = make_path(6);
  DistributedRwbcOptions options = accurate_options(2);
  options.cutoff = 800;  // slow mixing on paths
  const auto result = distributed_rwbc(g, options);
  const auto exact = current_flow_betweenness(g);
  EXPECT_LT(max_relative_error(exact, result.report.scores), 0.08);
}

TEST(DistributedRwbc, MatchesExactOnFig1Graph) {
  const Fig1Layout layout = make_fig1_graph(3);
  const auto result = distributed_rwbc(layout.graph, accurate_options(3));
  const auto exact = current_flow_betweenness(layout.graph);
  EXPECT_LT(max_relative_error(exact, result.report.scores), 0.08);
  // Clique members have near-tied exact scores, so sampling noise flips
  // some of those pairs; 0.7 still rules out any structural disagreement.
  EXPECT_GT(kendall_tau(exact, result.report.scores), 0.70);
}

TEST(DistributedRwbc, ScaledVisitsMatchExactPotentials) {
  const Graph g = make_cycle(6);
  DistributedRwbcOptions options = accurate_options(4);
  options.forced_target = 2;
  options.cutoff = 600;
  const auto result = distributed_rwbc(g, options);
  ASSERT_EQ(result.target, 2);
  CurrentFlowOptions exact_options;
  exact_options.grounding = 2;
  const DenseMatrix t = exact_potentials(g, exact_options);
  for (std::size_t v = 0; v < t.rows(); ++v) {
    for (std::size_t s = 0; s < t.cols(); ++s) {
      EXPECT_NEAR(result.scaled_visits(v, s), t(v, s), 0.06)
          << "entry (" << v << ", " << s << ")";
    }
  }
}

TEST(DistributedRwbc, RespectsCongestBandwidth) {
  Rng rng(5);
  const Graph g = make_erdos_renyi(24, 0.2, rng);
  DistributedRwbcOptions options;
  options.walks_per_source = 16;
  options.cutoff = 64;
  options.congest.seed = 6;
  const auto result = distributed_rwbc(g, options);
  Network probe(g, options.congest);  // for the budget value
  EXPECT_LE(result.report.metrics.max_bits_per_edge_round, probe.bit_budget());
  EXPECT_GT(result.report.metrics.max_bits_per_edge_round, 0u);
}

TEST(DistributedRwbc, DeterministicUnderSeed) {
  const Graph g = make_grid(3, 4);
  DistributedRwbcOptions options;
  options.walks_per_source = 32;
  options.cutoff = 96;
  options.congest.seed = 77;
  const auto a = distributed_rwbc(g, options);
  const auto b = distributed_rwbc(g, options);
  EXPECT_EQ(a.target, b.target);
  EXPECT_EQ(a.report.metrics.rounds, b.report.metrics.rounds);
  EXPECT_EQ(a.report.scores, b.report.scores);
}

TEST(DistributedRwbc, PhaseMetricsSumToTotal) {
  const Graph g = make_cycle(10);
  DistributedRwbcOptions options;
  options.walks_per_source = 8;
  options.cutoff = 40;
  options.congest.seed = 8;
  const auto r = distributed_rwbc(g, options);
  EXPECT_EQ(r.report.metrics.rounds,
            r.election_metrics.rounds + r.bfs_metrics.rounds +
                r.dissemination_metrics.rounds + r.counting_metrics.rounds +
                r.computing_metrics.rounds);
  EXPECT_GT(r.election_metrics.rounds, 0u);
  EXPECT_GT(r.bfs_metrics.rounds, 0u);
  EXPECT_GT(r.dissemination_metrics.rounds, 0u);
  EXPECT_GT(r.counting_metrics.rounds, 0u);
  EXPECT_GT(r.computing_metrics.rounds, 0u);
}

TEST(DistributedRwbc, ForcedTargetIsUsed) {
  const Graph g = make_star(8);
  DistributedRwbcOptions options;
  options.walks_per_source = 8;
  options.cutoff = 32;
  options.forced_target = 5;
  options.congest.seed = 9;
  const auto result = distributed_rwbc(g, options);
  EXPECT_EQ(result.target, 5);
  // No walks start at the target: its potentials column is zero.
  for (std::size_t v = 0; v < 8; ++v) {
    EXPECT_DOUBLE_EQ(result.scaled_visits(v, 5), 0.0);
  }
}

TEST(DistributedRwbc, TargetChoiceDoesNotBiasScores) {
  const Graph g = make_complete(5);
  DistributedRwbcOptions a = accurate_options(10);
  a.forced_target = 0;
  DistributedRwbcOptions b = accurate_options(11);
  b.forced_target = 4;
  const auto ra = distributed_rwbc(g, a);
  const auto rb = distributed_rwbc(g, b);
  EXPECT_LT(max_relative_error(ra.report.scores, rb.report.scores), 0.08);
}

TEST(DistributedRwbc, ScoreFreeModeSkipsScoresButCountsRounds) {
  const Graph g = make_cycle(8);
  DistributedRwbcOptions options;
  options.walks_per_source = 8;
  options.cutoff = 32;
  options.compute_scores = false;
  options.congest.seed = 12;
  const auto result = distributed_rwbc(g, options);
  EXPECT_TRUE(result.report.scores.empty());
  // Algorithm 2's n+2 message rounds still happen.
  EXPECT_GE(result.computing_metrics.rounds,
            static_cast<std::uint64_t>(g.node_count()));
}

TEST(DistributedRwbc, SkippingElectionSavesRoundsAndKeepsScores) {
  const Graph g = make_complete(5);
  DistributedRwbcOptions with = accurate_options(13);
  DistributedRwbcOptions without = accurate_options(13);
  without.run_leader_election = false;
  const auto rw = distributed_rwbc(g, with);
  const auto ro = distributed_rwbc(g, without);
  EXPECT_EQ(ro.election_metrics.rounds, 0u);
  EXPECT_LT(ro.report.metrics.rounds, rw.report.metrics.rounds);
  EXPECT_LT(max_relative_error(rw.report.scores, ro.report.scores), 0.08);
}

TEST(DistributedRwbc, DefaultParamsFollowTheTheorems) {
  const Graph g = make_cycle(32);
  DistributedRwbcOptions options;
  options.congest.seed = 14;
  options.walks_per_source = 4;  // keep the run fast...
  options.cutoff = 0;            // ...but let l default to Theorem 1's O(n)
  const auto result = distributed_rwbc(g, options);
  EXPECT_EQ(result.params.cutoff, default_cutoff(32));
  EXPECT_EQ(result.params.walks_per_source, 4u);
}

TEST(DistributedRwbc, BatchedComputePhaseGivesIdenticalScores) {
  const Graph g = make_grid(3, 4);
  DistributedRwbcOptions one = accurate_options(20);
  one.walks_per_source = 64;
  one.cutoff = 48;
  DistributedRwbcOptions batched = one;
  batched.counts_per_message = 0;  // auto-fit
  const auto r1 = distributed_rwbc(g, one);
  const auto rb = distributed_rwbc(g, batched);
  EXPECT_EQ(r1.report.scores, rb.report.scores);  // same walks, same scores
  EXPECT_LT(rb.computing_metrics.rounds, r1.computing_metrics.rounds);
}

TEST(DistributedRwbc, PerRoundPolicyRunsEndToEnd) {
  const Graph g = make_cycle(10);
  DistributedRwbcOptions options = accurate_options(21);
  options.walks_per_source = 64;
  options.cutoff = 60;
  options.length_policy = LengthPolicy::kPerRound;
  const auto r = distributed_rwbc(g, options);
  // Counting ends within cutoff + detection slack.
  EXPECT_LE(r.counting_metrics.rounds, 60u + 30u);
  const auto exact = current_flow_betweenness(g);
  // Cycle with low congestion: per-round spending still lands close.
  EXPECT_LT(max_relative_error(exact, r.report.scores), 0.5);
}

TEST(DistributedRwbc, RejectsBadInputs) {
  GraphBuilder disconnected(4);
  disconnected.add_edge(0, 1).add_edge(2, 3);
  EXPECT_THROW(distributed_rwbc(disconnected.build(), {}), Error);
  const Graph tiny = GraphBuilder(1).build();
  EXPECT_THROW(distributed_rwbc(tiny, {}), Error);
}

}  // namespace
}  // namespace rwbc
