// The CONGEST simulator itself: delivery timing, bandwidth enforcement,
// metrics accounting, halting/wake-up semantics, cut metering, and
// per-node RNG determinism.
#include <gtest/gtest.h>

#include <memory>
#include <string>

#include "congest/network.hpp"
#include "graph/generators.hpp"

namespace rwbc {
namespace {

// Negative-path contract: the simulator's precondition failures surface as
// rwbc::Error with a stable, actionable message — not as a crash or a
// generic exception.  Asserting the message substring pins which check
// fired (EXPECT_THROW alone would pass if a different guard tripped first).
template <typename Fn>
void expect_error_contains(Fn&& fn, const std::string& want) {
  try {
    fn();
    FAIL() << "expected rwbc::Error containing '" << want << "'";
  } catch (const Error& e) {
    EXPECT_NE(std::string(e.what()).find(want), std::string::npos)
        << "actual message: " << e.what();
  }
}

// Sends one fixed-width token to every neighbour in round 0, records what it
// receives in round 1, then halts.
class PingNode final : public NodeProcess {
 public:
  explicit PingNode(int width) : width_(width) {}

  void on_start(NodeContext&) override {}
  void on_round(NodeContext& ctx, std::span<const Message> inbox) override {
    for (const Message& msg : inbox) {
      auto reader = msg.reader();
      received_.push_back(
          {msg.from, static_cast<std::uint64_t>(reader.read(width_))});
    }
    if (ctx.round() == 0) {
      BitWriter w;
      w.write(static_cast<std::uint64_t>(ctx.id()) & ((1u << width_) - 1),
              width_);
      for (NodeId nb : ctx.neighbors()) ctx.send(nb, w);
    } else {
      ctx.halt();
    }
  }

  std::vector<std::pair<NodeId, std::uint64_t>> received_;

 private:
  int width_;
};

TEST(Network, DeliversNextRoundToAllNeighbors) {
  const Graph g = make_cycle(5);
  CongestConfig config;
  Network net(g, config);
  net.set_all_nodes([](NodeId) { return std::make_unique<PingNode>(8); });
  const RunMetrics metrics = net.run();
  EXPECT_EQ(metrics.total_messages, 2 * g.edge_count());
  for (NodeId v = 0; v < 5; ++v) {
    const auto& node = static_cast<const PingNode&>(net.node(v));
    ASSERT_EQ(node.received_.size(), 2u);  // both cycle neighbours
    for (const auto& [from, value] : node.received_) {
      EXPECT_EQ(value, static_cast<std::uint64_t>(from));
      EXPECT_TRUE(g.has_edge(v, from));
    }
  }
}

// Tries to exceed the per-edge bit budget in round 0, then stays silent
// (so in non-strict mode the run terminates instead of ping-ponging).
class FloodNode final : public NodeProcess {
 public:
  void on_start(NodeContext&) override {}
  void on_round(NodeContext& ctx, std::span<const Message>) override {
    if (ctx.round() == 0) {
      BitWriter w;
      for (int i = 0; i < 8; ++i) w.write(0xff, 8);  // 64 bits
      for (std::uint64_t burst = 0; burst * 64 <= ctx.bit_budget(); ++burst) {
        ctx.send(ctx.neighbors()[0], w);
      }
    }
    ctx.halt();
  }
};

TEST(Network, StrictModeRejectsBudgetViolation) {
  const Graph g = make_path(2);
  CongestConfig config;
  config.enforce_bandwidth = true;
  Network net(g, config);
  net.set_all_nodes([](NodeId) { return std::make_unique<FloodNode>(); });
  expect_error_contains([&] { net.run(); },
                        "CONGEST bandwidth budget exceeded");
}

TEST(Network, IdealModeOnlyMetersViolations) {
  const Graph g = make_path(2);
  CongestConfig config;
  config.enforce_bandwidth = false;
  Network net(g, config);
  net.set_all_nodes([](NodeId) { return std::make_unique<FloodNode>(); });
  const RunMetrics metrics = net.run();
  EXPECT_GT(metrics.max_bits_per_edge_round, net.bit_budget());
}

TEST(Network, SendToNonNeighborThrows) {
  const Graph g = make_path(3);  // 0-1-2; 0 and 2 are not adjacent
  class BadNode final : public NodeProcess {
   public:
    void on_start(NodeContext&) override {}
    void on_round(NodeContext& ctx, std::span<const Message>) override {
      if (ctx.id() == 0) {
        BitWriter w;
        w.write(1, 1);
        ctx.send(2, w);
      }
      ctx.halt();
    }
  };
  CongestConfig config;
  Network net(g, config);
  net.set_all_nodes([](NodeId) { return std::make_unique<BadNode>(); });
  expect_error_contains([&] { net.run(); }, "send target is not a neighbor");
}

// Node 0 sends a wake-up to node 1 in round 2; node 1 halts immediately in
// round 0 and must be woken to receive it.
class LateSender final : public NodeProcess {
 public:
  void on_start(NodeContext&) override {}
  void on_round(NodeContext& ctx, std::span<const Message> inbox) override {
    if (ctx.id() == 0) {
      if (ctx.round() == 2) {
        BitWriter w;
        w.write(1, 1);
        ctx.send(1, w);
        ctx.halt();
      }
    } else {
      woken_rounds_.push_back(ctx.round());
      if (!inbox.empty()) got_message_ = true;
      ctx.halt();
    }
  }
  std::vector<std::uint64_t> woken_rounds_;
  bool got_message_ = false;
};

TEST(Network, MessageWakesHaltedNode) {
  const Graph g = make_path(2);
  CongestConfig config;
  Network net(g, config);
  net.set_all_nodes([](NodeId) { return std::make_unique<LateSender>(); });
  net.run();
  const auto& receiver = static_cast<const LateSender&>(net.node(1));
  EXPECT_TRUE(receiver.got_message_);
  ASSERT_GE(receiver.woken_rounds_.size(), 2u);
  EXPECT_EQ(receiver.woken_rounds_.back(), 3u);  // sent round 2 -> round 3
}

TEST(Network, MaxRoundsGuardThrows) {
  class ForeverNode final : public NodeProcess {
   public:
    void on_start(NodeContext&) override {}
    void on_round(NodeContext&, std::span<const Message>) override {}
  };
  const Graph g = make_path(2);
  CongestConfig config;
  config.max_rounds = 10;
  Network net(g, config);
  net.set_all_nodes([](NodeId) { return std::make_unique<ForeverNode>(); });
  EXPECT_THROW(net.run(), Error);
}

TEST(Network, CutMeteringCountsOnlyCutTraffic) {
  const Graph g = make_path(4);  // 0-1-2-3
  CongestConfig config;
  Network net(g, config);
  net.set_all_nodes([](NodeId) { return std::make_unique<PingNode>(4); });
  const Edge cut[] = {Edge{1, 2}};
  net.register_cut(cut);
  const RunMetrics metrics = net.run();
  EXPECT_EQ(metrics.cut_messages, 2u);  // 1->2 and 2->1 pings
  EXPECT_EQ(metrics.cut_bits, 8u);
  EXPECT_GT(metrics.total_messages, metrics.cut_messages);
}

TEST(Network, RegisterCutRejectsNonEdges) {
  const Graph g = make_path(3);
  CongestConfig config;
  Network net(g, config);
  const Edge bogus[] = {Edge{0, 2}};
  EXPECT_THROW(net.register_cut(bogus), Error);
}

TEST(Network, PerNodeRngIsDeterministicAndIndependent) {
  class RngProbe final : public NodeProcess {
   public:
    void on_start(NodeContext& ctx) override { draw_ = ctx.rng()(); }
    void on_round(NodeContext& ctx, std::span<const Message>) override {
      ctx.halt();
    }
    std::uint64_t draw_ = 0;
  };
  const Graph g = make_path(3);
  CongestConfig config;
  config.seed = 42;
  auto run_once = [&] {
    Network net(g, config);
    net.set_all_nodes([](NodeId) { return std::make_unique<RngProbe>(); });
    net.run();
    std::vector<std::uint64_t> draws;
    for (NodeId v = 0; v < 3; ++v) {
      draws.push_back(static_cast<const RngProbe&>(net.node(v)).draw_);
    }
    return draws;
  };
  const auto a = run_once();
  const auto b = run_once();
  EXPECT_EQ(a, b);                // deterministic per seed
  EXPECT_NE(a[0], a[1]);          // distinct streams per node
  EXPECT_NE(a[1], a[2]);
}

TEST(Network, BudgetScalesWithLogN) {
  CongestConfig config;
  config.bandwidth_log_multiplier = 8;
  config.bit_floor = 1;
  const Graph small = make_cycle(16);   // log2 = 4
  const Graph large = make_cycle(256);  // log2 = 8
  EXPECT_EQ(Network(small, config).bit_budget(), 32u);
  EXPECT_EQ(Network(large, config).bit_budget(), 64u);
}

TEST(Network, RoundObserverSeesEveryRoundAndSumsToTotals) {
  const Graph g = make_cycle(5);
  CongestConfig config;
  std::vector<RoundSnapshot> snapshots;
  config.round_observer = [&](const RoundSnapshot& s) {
    snapshots.push_back(s);
  };
  Network net(g, config);
  net.set_all_nodes([](NodeId) { return std::make_unique<PingNode>(8); });
  const RunMetrics metrics = net.run();
  ASSERT_EQ(snapshots.size(), metrics.rounds);
  std::uint64_t messages = 0, bits = 0;
  for (std::size_t r = 0; r < snapshots.size(); ++r) {
    EXPECT_EQ(snapshots[r].round, r);
    messages += snapshots[r].messages;
    bits += snapshots[r].bits;
  }
  EXPECT_EQ(messages, metrics.total_messages);
  EXPECT_EQ(bits, metrics.total_bits);
  EXPECT_EQ(snapshots[0].awake_nodes, 5u);  // everyone sends in round 0
}

TEST(Network, RunTwiceThrows) {
  const Graph g = make_path(2);
  CongestConfig config;
  Network net(g, config);
  net.set_all_nodes([](NodeId) { return std::make_unique<PingNode>(4); });
  net.run();
  expect_error_contains([&] { net.run(); },
                        "Network::run may only be called once");
}

TEST(Network, MissingProgramThrows) {
  const Graph g = make_path(2);
  CongestConfig config;
  Network net(g, config);
  net.set_node(0, std::make_unique<PingNode>(4));
  expect_error_contains([&] { net.run(); },
                        "every node needs a program before run()");
}

// RunMetrics::operator+= is the pipeline's accounting rule: counters
// (rounds, totals, cut traffic, fault tallies) ADD across phases, while
// the per-edge-round peaks take the MAX — a pipeline's peak is its worst
// single round, not a sum.  Pinned field by field so a new counter that
// forgets to pick a side shows up here.
TEST(RunMetricsAccumulate, CountersAddAndPeaksTakeMax) {
  RunMetrics a;
  a.rounds = 10;
  a.total_messages = 100;
  a.total_bits = 1000;
  a.max_bits_per_edge_round = 64;
  a.max_messages_per_edge_round = 3;
  a.cut_bits = 40;
  a.cut_messages = 4;
  a.dropped_messages = 7;
  a.duplicated_messages = 2;
  a.crashed_nodes = 1;
  a.retransmissions = 9;
  RunMetrics b;
  b.rounds = 5;
  b.total_messages = 50;
  b.total_bits = 500;
  b.max_bits_per_edge_round = 32;  // smaller peak: must NOT accumulate
  b.max_messages_per_edge_round = 8;  // larger peak: must win
  b.cut_bits = 10;
  b.cut_messages = 1;
  b.dropped_messages = 3;
  b.duplicated_messages = 5;
  b.crashed_nodes = 2;
  b.retransmissions = 11;

  RunMetrics sum = a;
  sum += b;
  EXPECT_EQ(sum.rounds, 15u);
  EXPECT_EQ(sum.total_messages, 150u);
  EXPECT_EQ(sum.total_bits, 1500u);
  EXPECT_EQ(sum.max_bits_per_edge_round, 64u);
  EXPECT_EQ(sum.max_messages_per_edge_round, 8u);
  EXPECT_EQ(sum.cut_bits, 50u);
  EXPECT_EQ(sum.cut_messages, 5u);
  EXPECT_EQ(sum.dropped_messages, 10u);
  EXPECT_EQ(sum.duplicated_messages, 7u);
  EXPECT_EQ(sum.crashed_nodes, 3u);
  EXPECT_EQ(sum.retransmissions, 20u);

  // Max semantics hold in the other accumulation order too.
  RunMetrics rev = b;
  rev += a;
  EXPECT_EQ(rev.max_bits_per_edge_round, 64u);
  EXPECT_EQ(rev.max_messages_per_edge_round, 8u);
  EXPECT_EQ(rev.rounds, sum.rounds);
}

}  // namespace
}  // namespace rwbc
