// Parameter selection: the Theorem 1/3 defaults and their knobs.
#include <gtest/gtest.h>

#include "rwbc/params.hpp"

namespace rwbc {
namespace {

TEST(Params, CutoffIsLinearInN) {
  EXPECT_EQ(default_cutoff(100, 2.0), 200u);
  EXPECT_EQ(default_cutoff(100, 0.5), 50u);
  EXPECT_EQ(default_cutoff(1, 0.001), 1u);  // floor at 1
}

TEST(Params, WalksAreLogarithmicInN) {
  EXPECT_EQ(default_walks_per_source(1024, 4.0), 40u);  // 4 * log2(1024)
  EXPECT_EQ(default_walks_per_source(2, 1.0), 1u);
  EXPECT_EQ(default_walks_per_source(1, 1.0), 1u);  // log floor at 2
}

TEST(Params, DefaultsComposePerTheorems) {
  const RwbcParams p = default_params(256);
  EXPECT_EQ(p.cutoff, 512u);           // 2n
  EXPECT_EQ(p.walks_per_source, 32u);  // 4 log2 n
}

TEST(Params, GrowthIsMonotone) {
  EXPECT_LT(default_cutoff(64), default_cutoff(128));
  EXPECT_LE(default_walks_per_source(64), default_walks_per_source(128));
}

TEST(Params, RejectsInvalidArguments) {
  EXPECT_THROW(default_cutoff(0), Error);
  EXPECT_THROW(default_cutoff(8, 0.0), Error);
  EXPECT_THROW(default_walks_per_source(0), Error);
  EXPECT_THROW(default_walks_per_source(8, -1.0), Error);
}

}  // namespace
}  // namespace rwbc
