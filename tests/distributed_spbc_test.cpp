// Distributed shortest-path betweenness (the companion result [5]):
// equality with exact Brandes up to the bounded-precision sigma encoding,
// round profile, and compliance.
#include <gtest/gtest.h>

#include "centrality/brandes.hpp"
#include "common/rng.hpp"
#include "common/stats.hpp"
#include "graph/generators.hpp"
#include "rwbc/distributed_spbc.hpp"

namespace rwbc {
namespace {

DistributedSpbcOptions test_options(std::uint64_t seed) {
  DistributedSpbcOptions options;
  options.congest.seed = seed;
  options.congest.bit_floor = 64;  // small-n tests need the float width
  return options;
}

class SpbcFamily : public ::testing::TestWithParam<const char*> {
 protected:
  Graph graph() const {
    const std::string name = GetParam();
    Rng rng(5);
    if (name == "path") return make_path(9);
    if (name == "cycle") return make_cycle(10);
    if (name == "star") return make_star(11);
    if (name == "grid") return make_grid(3, 4);
    if (name == "tree") return make_binary_tree(12);
    if (name == "barbell") return make_barbell(4, 2);
    if (name == "fig1") return make_fig1_graph(3).graph;
    if (name == "er") return make_erdos_renyi(14, 0.3, rng);
    if (name == "ba") return make_barabasi_albert(14, 2, rng);
    throw std::runtime_error("unknown family " + name);
  }
};

TEST_P(SpbcFamily, MatchesBrandesExactly) {
  // No sampling anywhere: the only error source is the 22-bit sigma/delta
  // mantissa, so agreement must be essentially exact.
  const Graph g = graph();
  const auto distributed = distributed_spbc(g, test_options(1));
  const auto exact = brandes_betweenness(g);
  for (std::size_t v = 0; v < exact.size(); ++v) {
    EXPECT_NEAR(distributed.report.scores[v], exact[v], 1e-5)
        << "family " << GetParam() << " node " << v;
  }
}

INSTANTIATE_TEST_SUITE_P(Families, SpbcFamily,
                         ::testing::Values("path", "cycle", "star", "grid",
                                           "tree", "barbell", "fig1", "er",
                                           "ba"),
                         [](const auto& suite_info) { return suite_info.param; });

TEST(DistributedSpbc, Fig1NodeCScoresZero) {
  const Fig1Layout layout = make_fig1_graph(4);
  const auto result = distributed_spbc(layout.graph, test_options(2));
  EXPECT_NEAR(result.report.scores[static_cast<std::size_t>(layout.c)], 0.0,
              1e-9);
}

TEST(DistributedSpbc, UnnormalizedMatchesBrandesRawCounts) {
  const Graph g = make_path(6);
  DistributedSpbcOptions options = test_options(3);
  options.normalized = false;
  const auto distributed = distributed_spbc(g, options);
  BrandesOptions raw;
  raw.normalized = false;
  const auto exact = brandes_betweenness(g, raw);
  for (std::size_t v = 0; v < exact.size(); ++v) {
    EXPECT_NEAR(distributed.report.scores[v], exact[v], 1e-4);
  }
}

TEST(DistributedSpbc, RoundsGrowNearLinearly) {
  // The [5] claim: O(n) rounds.  Fit the growth exponent across a sweep.
  std::vector<double> ns, rounds;
  for (NodeId n : {16, 32, 64, 128}) {
    Rng rng(7);
    const Graph g = make_erdos_renyi(n, 4.0 / static_cast<double>(n), rng);
    const auto result = distributed_spbc(g, test_options(4));
    ns.push_back(static_cast<double>(n));
    rounds.push_back(static_cast<double>(result.report.metrics.rounds));
  }
  const PowerFit fit = fit_power(ns, rounds);
  EXPECT_GT(fit.exponent, 0.5);
  EXPECT_LT(fit.exponent, 1.6);
}

TEST(DistributedSpbc, RespectsCongestBudget) {
  Rng rng(9);
  const Graph g = make_barabasi_albert(24, 2, rng);
  const DistributedSpbcOptions options = test_options(5);
  const auto result = distributed_spbc(g, options);
  Network probe(g, options.congest);
  EXPECT_LE(result.report.metrics.max_bits_per_edge_round, probe.bit_budget());
}

TEST(DistributedSpbc, DeterministicAndSeedInvariant) {
  // The computation has no randomness at all: different seeds must give
  // identical results (scheduling is fixed by the simulator).
  const Graph g = make_grid(3, 3);
  const auto a = distributed_spbc(g, test_options(10));
  const auto b = distributed_spbc(g, test_options(11));
  EXPECT_EQ(a.report.scores, b.report.scores);
  EXPECT_EQ(a.report.metrics.rounds, b.report.metrics.rounds);
}

TEST(DistributedSpbc, RejectsBadInputs) {
  GraphBuilder b(4);
  b.add_edge(0, 1).add_edge(2, 3);
  EXPECT_THROW(distributed_spbc(b.build(), test_options(12)), Error);
  const Graph tiny = GraphBuilder(1).build();
  EXPECT_THROW(distributed_spbc(tiny, test_options(13)), Error);
}

TEST(ApproxFloat, RoundTripsWithinRelativePrecision) {
  for (double value : {0.0, 1.0, 3.25, 1e-6, 123456789.0, 7.3e20}) {
    const auto encoded = encode_approx_float(value, 22, 8);
    const double decoded = decode_approx_float(encoded, 22, 8);
    if (value == 0.0) {
      EXPECT_EQ(decoded, 0.0);
    } else {
      EXPECT_NEAR(decoded / value, 1.0, 1e-6) << value;
    }
  }
}

TEST(ApproxFloat, RejectsBadWidths) {
  EXPECT_THROW(encode_approx_float(1.0, 0, 8), Error);
  EXPECT_THROW(encode_approx_float(1.0, 22, 1), Error);
  EXPECT_THROW(encode_approx_float(-1.0, 22, 8), Error);
  EXPECT_THROW(decode_approx_float(1, 60, 8), Error);
}

}  // namespace
}  // namespace rwbc
