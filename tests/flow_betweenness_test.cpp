// Freeman network-flow betweenness: structural expectations on known
// topologies and its Fig. 1 behaviour.
#include <gtest/gtest.h>

#include "centrality/brandes.hpp"
#include "centrality/flow_betweenness.hpp"
#include "graph/generators.hpp"

namespace rwbc {
namespace {

TEST(FlowBetweenness, PathMiddleDominates) {
  const Graph g = make_path(5);
  const auto b = flow_betweenness(g);
  EXPECT_GT(b[2], b[0]);
  EXPECT_GT(b[2], b[4]);
  EXPECT_DOUBLE_EQ(b[0], 0.0);  // endpoints pass no through-flow
}

TEST(FlowBetweenness, StarHubTakesEverything) {
  const Graph g = make_star(7);
  const auto b = flow_betweenness(g);
  for (std::size_t v = 1; v < b.size(); ++v) {
    EXPECT_DOUBLE_EQ(b[v], 0.0);
  }
  EXPECT_GT(b[0], 0.5);
}

TEST(FlowBetweenness, SymmetricOnCycles) {
  const Graph g = make_cycle(6);
  const auto b = flow_betweenness(g);
  for (std::size_t v = 1; v < b.size(); ++v) {
    EXPECT_NEAR(b[v], b[0], 1e-12);
  }
}

TEST(FlowBetweenness, UnnormalizedCountsRawFlow) {
  const Graph g = make_path(4);
  FlowBetweennessOptions raw;
  raw.normalized = false;
  const auto b = flow_betweenness(g, raw);
  // Node 1 carries pairs (0,2), (0,3): one unit each.
  EXPECT_DOUBLE_EQ(b[1], 2.0);
}

TEST(FlowBetweenness, Fig1NodeCSeesFlow) {
  // Unlike shortest paths, max flow does exploit the parallel A-C-B route.
  const Fig1Layout layout = make_fig1_graph(3);
  const auto flow = flow_betweenness(layout.graph);
  const auto sp = brandes_betweenness(layout.graph);
  const auto c = static_cast<std::size_t>(layout.c);
  EXPECT_DOUBLE_EQ(sp[c], 0.0);
  EXPECT_GT(flow[c], 0.0);
}

TEST(FlowBetweenness, RejectsBadInputs) {
  EXPECT_THROW(flow_betweenness(make_path(2)), Error);
  GraphBuilder b(4);
  b.add_edge(0, 1).add_edge(2, 3);
  EXPECT_THROW(flow_betweenness(b.build()), Error);
}

}  // namespace
}  // namespace rwbc
