// Alpha-current-flow betweenness: limit behaviour and structural sanity.
#include <gtest/gtest.h>

#include "centrality/alpha_cfb.hpp"
#include "centrality/current_flow_exact.hpp"
#include "centrality/ranking.hpp"
#include "common/rng.hpp"
#include "common/stats.hpp"
#include "graph/generators.hpp"

namespace rwbc {
namespace {

TEST(AlphaCfb, ApproachesNewmanAsAlphaNearsOne) {
  Rng rng(1);
  const Graph g = make_erdos_renyi(12, 0.35, rng);
  const auto exact = current_flow_betweenness(g);
  const auto near_one = alpha_current_flow_betweenness(g, 0.9999);
  EXPECT_LT(max_relative_error(exact, near_one), 0.01);
}

TEST(AlphaCfb, RankAgreementIsHighNearAlphaOne) {
  // On a tie-free graph the alpha -> 1 ranking converges to Newman's.
  // (Graphs with symmetric orbits have exactly tied scores whose arbitrary
  // tie-breaks make tau non-monotone in alpha, so we use an ER instance.)
  Rng rng(8);
  const Graph g = make_erdos_renyi(14, 0.3, rng);
  const auto exact = current_flow_betweenness(g);
  const double tau_low =
      kendall_tau(exact, alpha_current_flow_betweenness(g, 0.3));
  const double tau_high =
      kendall_tau(exact, alpha_current_flow_betweenness(g, 0.9999));
  EXPECT_GT(tau_high, 0.98);
  EXPECT_GE(tau_high, tau_low - 1e-9);
}

TEST(AlphaCfb, PotentialsAreSymmetric) {
  const Graph g = make_grid(3, 3);
  const DenseMatrix t = alpha_potentials(g, 0.7);
  for (std::size_t i = 0; i < t.rows(); ++i) {
    for (std::size_t j = 0; j < t.cols(); ++j) {
      EXPECT_NEAR(t(i, j), t(j, i), 1e-10);
    }
  }
}

TEST(AlphaCfb, StarHubStillDominates) {
  const Graph g = make_star(9);
  const auto b = alpha_current_flow_betweenness(g, 0.8);
  for (std::size_t v = 1; v < b.size(); ++v) {
    EXPECT_GT(b[0], b[v]);
  }
}

TEST(AlphaCfb, RejectsAlphaOutOfRange) {
  const Graph g = make_cycle(4);
  EXPECT_THROW(alpha_current_flow_betweenness(g, 0.0), Error);
  EXPECT_THROW(alpha_current_flow_betweenness(g, 1.0), Error);
  EXPECT_THROW(alpha_current_flow_betweenness(g, -0.5), Error);
}

TEST(AlphaCfb, RejectsDisconnectedGraphs) {
  GraphBuilder b(4);
  b.add_edge(0, 1).add_edge(2, 3);
  EXPECT_THROW(alpha_current_flow_betweenness(b.build(), 0.5), Error);
}

}  // namespace
}  // namespace rwbc
