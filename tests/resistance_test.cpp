// Effective resistance & Matrix-Tree invariants — closed forms that
// cross-validate the exact potentials pipeline of Section IV.
#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.hpp"
#include "graph/generators.hpp"
#include "graph/properties.hpp"
#include "linalg/resistance.hpp"

namespace rwbc {
namespace {

TEST(EffectiveResistance, PathIsDistance) {
  const Graph g = make_path(6);
  EXPECT_NEAR(effective_resistance(g, 0, 5), 5.0, 1e-10);
  EXPECT_NEAR(effective_resistance(g, 1, 3), 2.0, 1e-10);
}

TEST(EffectiveResistance, CycleIsParallelPaths) {
  // C_n: R(s, t) = d (n - d) / n for hop distance d.
  const NodeId n = 8;
  const Graph g = make_cycle(n);
  EXPECT_NEAR(effective_resistance(g, 0, 4), 4.0 * 4.0 / 8.0, 1e-10);
  EXPECT_NEAR(effective_resistance(g, 0, 1), 1.0 * 7.0 / 8.0, 1e-10);
}

TEST(EffectiveResistance, CompleteGraphIsTwoOverN) {
  const NodeId n = 7;
  const Graph g = make_complete(n);
  EXPECT_NEAR(effective_resistance(g, 2, 5), 2.0 / static_cast<double>(n),
              1e-10);
}

TEST(EffectiveResistance, MatrixMatchesPairQueries) {
  Rng rng(3);
  const Graph g = make_erdos_renyi(10, 0.4, rng);
  const DenseMatrix r = effective_resistance_matrix(g);
  for (NodeId s = 0; s < g.node_count(); ++s) {
    EXPECT_DOUBLE_EQ(r(static_cast<std::size_t>(s),
                       static_cast<std::size_t>(s)), 0.0);
    for (NodeId t = s + 1; t < g.node_count(); ++t) {
      EXPECT_NEAR(r(static_cast<std::size_t>(s), static_cast<std::size_t>(t)),
                  effective_resistance(g, s, t), 1e-8);
    }
  }
}

TEST(EffectiveResistance, IsAMetric) {
  // Triangle inequality R(a,c) <= R(a,b) + R(b,c) — resistance distance is
  // a metric, a strong structural test of the potentials matrix.
  Rng rng(5);
  const Graph g = make_barabasi_albert(12, 2, rng);
  const DenseMatrix r = effective_resistance_matrix(g);
  for (std::size_t a = 0; a < r.rows(); ++a) {
    for (std::size_t b = 0; b < r.rows(); ++b) {
      for (std::size_t c = 0; c < r.rows(); ++c) {
        EXPECT_LE(r(a, c), r(a, b) + r(b, c) + 1e-9);
      }
    }
  }
}

TEST(EffectiveResistance, RejectsBadInput) {
  const Graph g = make_path(3);
  EXPECT_THROW(effective_resistance(g, 0, 0), Error);
  EXPECT_THROW(effective_resistance(g, 0, 5), Error);
  GraphBuilder b(4);
  b.add_edge(0, 1).add_edge(2, 3);
  EXPECT_THROW(effective_resistance(b.build(), 0, 2), Error);
}

TEST(KirchhoffIndex, PathClosedForm) {
  // Kf(P_n) = sum_{s<t} |s - t| = n(n^2 - 1)/6.
  const NodeId n = 6;
  const Graph g = make_path(n);
  EXPECT_NEAR(kirchhoff_index(g),
              static_cast<double>(n) * (n * n - 1.0) / 6.0, 1e-8);
}

TEST(SpanningTrees, ClosedForms) {
  EXPECT_NEAR(spanning_tree_count(make_path(5)), 1.0, 1e-9);
  EXPECT_NEAR(spanning_tree_count(make_cycle(7)), 7.0, 1e-8);
  // Cayley: K_n has n^(n-2) spanning trees.
  EXPECT_NEAR(spanning_tree_count(make_complete(4)), 16.0, 1e-7);
  EXPECT_NEAR(spanning_tree_count(make_complete(5)), 125.0, 1e-6);
  EXPECT_NEAR(spanning_tree_count(make_star(9)), 1.0, 1e-9);
  const Graph single = GraphBuilder(1).build();
  EXPECT_DOUBLE_EQ(spanning_tree_count(single), 1.0);
}

TEST(CurrentFlowCloseness, StarHubIsClosest) {
  const Graph g = make_star(7);
  const auto c = current_flow_closeness(g);
  for (std::size_t v = 1; v < c.size(); ++v) {
    EXPECT_GT(c[0], c[v]);
  }
}

TEST(CurrentFlowCloseness, CompleteGraphClosedForm) {
  // K_n: every pair's resistance is 2/n, so C(v) = (n-1)/((n-1)*2/n) = n/2.
  const NodeId n = 6;
  const auto c = current_flow_closeness(make_complete(n));
  for (double v : c) {
    EXPECT_NEAR(v, static_cast<double>(n) / 2.0, 1e-9);
  }
}

TEST(CurrentFlowCloseness, DominatedByShortestPathCloseness) {
  // Resistance distance <= shortest-path distance, so current-flow
  // closeness >= classic closeness ... with equality on trees (where the
  // unique path makes them identical).
  const Graph tree = make_binary_tree(9);
  const auto cf = current_flow_closeness(tree);
  // On a tree, resistance = hop distance: spot-check the root.
  const auto dist_sum = [&] {
    double total = 0.0;
    for (NodeId t = 1; t < tree.node_count(); ++t) {
      total += static_cast<double>(bfs_distances(tree, 0)
                                       [static_cast<std::size_t>(t)]);
    }
    return total;
  }();
  EXPECT_NEAR(cf[0], static_cast<double>(tree.node_count() - 1) / dist_sum,
              1e-9);
}

TEST(SpanningTrees, RejectsDisconnected) {
  GraphBuilder b(3);
  b.add_edge(0, 1);
  EXPECT_THROW(spanning_tree_count(b.build()), Error);
}

}  // namespace
}  // namespace rwbc
