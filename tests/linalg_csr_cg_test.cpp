// CSR assembly/SpMV and the conjugate-gradient solver.
#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "graph/generators.hpp"
#include "linalg/cg.hpp"
#include "linalg/csr.hpp"
#include "linalg/laplacian.hpp"
#include "linalg/lu.hpp"

namespace rwbc {
namespace {

TEST(Csr, AssemblySumsDuplicates) {
  std::vector<Triplet> triplets{{0, 0, 1.0}, {0, 0, 2.0}, {1, 0, -1.0}};
  const CsrMatrix m(2, 2, triplets);
  EXPECT_EQ(m.nonzeros(), 2u);
  const DenseMatrix d = m.to_dense();
  EXPECT_DOUBLE_EQ(d(0, 0), 3.0);
  EXPECT_DOUBLE_EQ(d(1, 0), -1.0);
  EXPECT_DOUBLE_EQ(d(1, 1), 0.0);
}

TEST(Csr, OutOfRangeTripletThrows) {
  std::vector<Triplet> triplets{{2, 0, 1.0}};
  EXPECT_THROW(CsrMatrix(2, 2, triplets), Error);
}

TEST(Csr, SpmvMatchesDense) {
  Rng rng(3);
  std::vector<Triplet> triplets;
  for (int i = 0; i < 30; ++i) {
    triplets.push_back({rng.next_below(8), rng.next_below(8),
                        rng.next_double() - 0.5});
  }
  const CsrMatrix sparse(8, 8, triplets);
  const DenseMatrix dense = sparse.to_dense();
  Vector x(8);
  for (auto& v : x) v = rng.next_double();
  const Vector ys = sparse.multiply(x);
  const Vector yd = multiply(dense, x);
  for (std::size_t i = 0; i < 8; ++i) EXPECT_NEAR(ys[i], yd[i], 1e-12);
}

TEST(Csr, MultiplyAddAccumulates) {
  std::vector<Triplet> triplets{{0, 0, 2.0}, {1, 1, 3.0}};
  const CsrMatrix m(2, 2, triplets);
  Vector y{10.0, 20.0};
  const Vector x{1.0, 1.0};
  m.multiply_add(x, -1.0, y);
  EXPECT_DOUBLE_EQ(y[0], 8.0);
  EXPECT_DOUBLE_EQ(y[1], 17.0);
}

TEST(Csr, DiagonalExtraction) {
  std::vector<Triplet> triplets{{0, 0, 5.0}, {1, 0, 1.0}, {1, 1, 7.0}};
  const CsrMatrix m(2, 2, triplets);
  const Vector diag = m.diagonal();
  EXPECT_DOUBLE_EQ(diag[0], 5.0);
  EXPECT_DOUBLE_EQ(diag[1], 7.0);
}

TEST(Cg, SolvesReducedLaplacianLikeLu) {
  Rng rng(7);
  const Graph g = make_erdos_renyi(16, 0.3, rng);
  const NodeId ground = 15;
  const CsrMatrix sparse = reduced_laplacian_csr(g, ground);
  const DenseMatrix dense = reduced_laplacian_matrix(g, ground);
  Vector b(sparse.rows(), 0.0);
  b[3] = 1.0;
  Vector x(sparse.rows(), 0.0);
  const CgResult result = conjugate_gradient(sparse, b, x);
  EXPECT_TRUE(result.converged);
  const Vector reference = lu_solve(dense, b);
  for (std::size_t i = 0; i < x.size(); ++i) {
    EXPECT_NEAR(x[i], reference[i], 1e-7);
  }
}

TEST(Cg, ZeroRhsGivesZeroSolution) {
  const Graph g = make_cycle(5);
  const CsrMatrix a = reduced_laplacian_csr(g, 0);
  const Vector b(a.rows(), 0.0);
  Vector x(a.rows(), 1.0);  // non-zero initial guess must be overwritten
  const CgResult result = conjugate_gradient(a, b, x);
  EXPECT_TRUE(result.converged);
  for (double v : x) EXPECT_DOUBLE_EQ(v, 0.0);
}

TEST(Cg, WorksWithoutPreconditioner) {
  const Graph g = make_grid(4, 4);
  const CsrMatrix a = reduced_laplacian_csr(g, 0);
  Vector b(a.rows(), 0.0);
  b[0] = 1.0;
  Vector x_jacobi(a.rows(), 0.0), x_plain(a.rows(), 0.0);
  CgOptions plain;
  plain.jacobi_preconditioner = false;
  EXPECT_TRUE(conjugate_gradient(a, b, x_jacobi).converged);
  EXPECT_TRUE(conjugate_gradient(a, b, x_plain, plain).converged);
  for (std::size_t i = 0; i < x_jacobi.size(); ++i) {
    EXPECT_NEAR(x_jacobi[i], x_plain[i], 1e-7);
  }
}

TEST(Cg, IterationCapReportsNonConvergence) {
  const Graph g = make_path(64);  // ill-conditioned chain
  const CsrMatrix a = reduced_laplacian_csr(g, 0);
  Vector b(a.rows(), 0.0);
  b[60] = 1.0;
  Vector x(a.rows(), 0.0);
  CgOptions options;
  options.max_iterations = 2;
  options.tolerance = 1e-14;
  const CgResult result = conjugate_gradient(a, b, x, options);
  EXPECT_FALSE(result.converged);
  EXPECT_EQ(result.iterations, 2u);
}

TEST(Cg, SizeMismatchThrows) {
  const Graph g = make_cycle(4);
  const CsrMatrix a = reduced_laplacian_csr(g, 0);
  Vector b(2, 0.0), x(3, 0.0);
  EXPECT_THROW(conjugate_gradient(a, b, x), Error);
}

}  // namespace
}  // namespace rwbc
