// Distributed CONGEST PageRank: convergence to power iteration, the short
// O(log n / eps) round profile, and token-count compression compliance.
#include <gtest/gtest.h>

#include <numeric>

#include "centrality/pagerank.hpp"
#include "common/rng.hpp"
#include "common/stats.hpp"
#include "graph/generators.hpp"
#include "rwbc/distributed_pagerank.hpp"

namespace rwbc {
namespace {

TEST(DistributedPagerank, ConvergesToPowerIteration) {
  const Graph g = make_star(10);
  DistributedPagerankOptions options;
  options.walks_per_node = 20'000;
  options.congest.seed = 1;
  const auto result = distributed_pagerank(g, options);
  const auto power = pagerank_power(g);
  EXPECT_LT(max_relative_error(power, result.report.scores), 0.05);
}

TEST(DistributedPagerank, EstimatesSumToOne) {
  Rng rng(2);
  const Graph g = make_erdos_renyi(20, 0.3, rng);
  DistributedPagerankOptions options;
  options.walks_per_node = 500;
  options.congest.seed = 2;
  const auto result = distributed_pagerank(g, options);
  EXPECT_NEAR(std::accumulate(result.report.scores.begin(), result.report.scores.end(),
                              0.0),
              1.0, 1e-12);
}

TEST(DistributedPagerank, FinishesInLogarithmicallyManyRounds) {
  // Geometric walk lengths: even with thousands of walks the longest one is
  // ~log(total)/eps steps, far below n for a big cycle.
  const Graph g = make_cycle(300);
  DistributedPagerankOptions options;
  options.walks_per_node = 32;
  options.congest.seed = 3;
  const auto result = distributed_pagerank(g, options);
  EXPECT_LT(result.report.metrics.rounds, 300u);
  EXPECT_GT(result.report.metrics.rounds, 5u);
}

TEST(DistributedPagerank, TokenCompressionKeepsBudget) {
  // A star hub relays nearly all walks every round: without count
  // compression this would smash the per-edge budget.
  const Graph g = make_star(40);
  DistributedPagerankOptions options;
  options.walks_per_node = 2000;
  options.congest.seed = 4;
  const auto result = distributed_pagerank(g, options);
  Network probe(g, options.congest);
  EXPECT_LE(result.report.metrics.max_bits_per_edge_round, probe.bit_budget());
}

TEST(DistributedPagerank, DeterministicUnderSeed) {
  const Graph g = make_grid(4, 4);
  DistributedPagerankOptions options;
  options.walks_per_node = 64;
  options.congest.seed = 5;
  const auto a = distributed_pagerank(g, options);
  const auto b = distributed_pagerank(g, options);
  EXPECT_EQ(a.report.scores, b.report.scores);
  EXPECT_EQ(a.report.metrics.rounds, b.report.metrics.rounds);
}

TEST(DistributedPagerank, RejectsBadInputs) {
  const Graph isolated = GraphBuilder(2).build();
  EXPECT_THROW(distributed_pagerank(isolated), Error);
  const Graph g = make_cycle(4);
  DistributedPagerankOptions bad;
  bad.reset_probability = 0.0;
  EXPECT_THROW(distributed_pagerank(g, bad), Error);
}

}  // namespace
}  // namespace rwbc
