// Distributed alpha-current-flow betweenness (Section II-C): estimator
// identity against the exact regularised potentials, accuracy against the
// exact alpha-CFB, the O(log n / (1-alpha)) round profile, and compliance.
#include <gtest/gtest.h>

#include "centrality/alpha_cfb.hpp"
#include "common/stats.hpp"
#include "graph/generators.hpp"
#include "rwbc/distributed_alpha_cfb.hpp"
#include "rwbc/distributed_rwbc.hpp"

namespace rwbc {
namespace {

TEST(DistributedAlphaCfb, ScaledVisitsMatchRegularisedPotentials) {
  const Graph g = make_complete(4);
  DistributedAlphaCfbOptions options;
  options.alpha = 0.7;
  options.walks_per_source = 40'000;
  options.congest.seed = 1;
  options.congest.bit_floor = 128;
  const auto result = distributed_alpha_cfb(g, options);
  const DenseMatrix t = alpha_potentials(g, 0.7);
  EXPECT_LT(subtract(result.scaled_visits, t).max_abs(), 0.02);
}

TEST(DistributedAlphaCfb, BetweennessMatchesExactAlphaCfb) {
  const Graph g = make_grid(3, 3);
  DistributedAlphaCfbOptions options;
  options.alpha = 0.8;
  options.walks_per_source = 8000;
  options.congest.seed = 2;
  options.congest.bit_floor = 128;
  const auto result = distributed_alpha_cfb(g, options);
  const auto exact = alpha_current_flow_betweenness(g, 0.8);
  EXPECT_LT(max_relative_error(exact, result.report.scores), 0.08);
}

TEST(DistributedAlphaCfb, RoundsStayLogarithmicUnlikeRwbc) {
  // The Section II-C/II-D positioning: evaporating walks die after
  // ~1/(1-alpha) expected steps, so rounds do not grow with n the way the
  // RWBC counting phase's l = O(n) forces.
  const Graph small = make_cycle(32);
  const Graph large = make_cycle(256);
  auto rounds_for = [](const Graph& g) {
    DistributedAlphaCfbOptions options;
    options.alpha = 0.8;
    options.walks_per_source = 8;
    options.compute_scores = false;
    options.congest.seed = 3;
    // Subtract the tree phases, which are Theta(n) by themselves.
    const auto r = distributed_alpha_cfb(g, options);
    return r.counting_metrics.rounds;
  };
  const auto small_rounds = rounds_for(small);
  const auto large_rounds = rounds_for(large);
  // 8x the nodes must cost far less than 8x the counting rounds.
  EXPECT_LT(large_rounds, 3 * small_rounds);
  // ... while the RWBC counting phase grows near-linearly (sanity anchor).
  DistributedRwbcOptions rwbc_options;
  rwbc_options.walks_per_source = 8;
  rwbc_options.compute_scores = false;
  rwbc_options.run_leader_election = false;
  rwbc_options.congest.seed = 3;
  const auto rwbc_large = distributed_rwbc(large, rwbc_options);
  EXPECT_GT(rwbc_large.counting_metrics.rounds, 4 * large_rounds);
}

TEST(DistributedAlphaCfb, CapIsStatisticallyInvisible) {
  const Graph g = make_cycle(8);
  DistributedAlphaCfbOptions options;
  options.alpha = 0.6;
  options.walks_per_source = 2000;
  options.congest.seed = 4;
  options.congest.bit_floor = 128;
  const auto result = distributed_alpha_cfb(g, options);
  // The default cap sits at the w.h.p. bound: virtually no walk reaches it.
  EXPECT_EQ(result.capped_walks, 0u);
}

TEST(DistributedAlphaCfb, RespectsCongestBudget) {
  const Graph g = make_star(20);
  DistributedAlphaCfbOptions options;
  options.alpha = 0.85;
  options.walks_per_source = 12;
  options.congest.seed = 5;
  const auto result = distributed_alpha_cfb(g, options);
  Network probe(g, options.congest);
  EXPECT_LE(result.report.metrics.max_bits_per_edge_round, probe.bit_budget());
}

TEST(DistributedAlphaCfb, DeterministicUnderSeed) {
  const Graph g = make_grid(3, 3);
  DistributedAlphaCfbOptions options;
  options.alpha = 0.75;
  options.walks_per_source = 32;
  options.congest.seed = 6;
  options.congest.bit_floor = 64;
  const auto a = distributed_alpha_cfb(g, options);
  const auto b = distributed_alpha_cfb(g, options);
  EXPECT_EQ(a.report.scores, b.report.scores);
  EXPECT_EQ(a.report.metrics.rounds, b.report.metrics.rounds);
}

TEST(DistributedAlphaCfb, RejectsBadInputs) {
  const Graph g = make_cycle(4);
  DistributedAlphaCfbOptions bad;
  bad.alpha = 1.0;
  EXPECT_THROW(distributed_alpha_cfb(g, bad), Error);
  bad.alpha = 0.0;
  EXPECT_THROW(distributed_alpha_cfb(g, bad), Error);
  GraphBuilder b(4);
  b.add_edge(0, 1).add_edge(2, 3);
  DistributedAlphaCfbOptions ok;
  EXPECT_THROW(distributed_alpha_cfb(b.build(), ok), Error);
}

}  // namespace
}  // namespace rwbc
