// Generator families: sizes, degrees, connectivity, and the structural
// promises each generator documents.
#include <gtest/gtest.h>

#include "centrality/brandes.hpp"
#include "common/rng.hpp"
#include "graph/generators.hpp"
#include "graph/properties.hpp"

namespace rwbc {
namespace {

TEST(Generators, PathShape) {
  const Graph g = make_path(5);
  EXPECT_EQ(g.node_count(), 5);
  EXPECT_EQ(g.edge_count(), 4u);
  EXPECT_EQ(diameter(g), 4);
  EXPECT_EQ(g.degree(0), 1);
  EXPECT_EQ(g.degree(2), 2);
}

TEST(Generators, CycleShape) {
  const Graph g = make_cycle(6);
  EXPECT_EQ(g.edge_count(), 6u);
  for (NodeId v = 0; v < 6; ++v) EXPECT_EQ(g.degree(v), 2);
  EXPECT_EQ(diameter(g), 3);
}

TEST(Generators, StarShape) {
  const Graph g = make_star(9);
  EXPECT_EQ(g.edge_count(), 8u);
  EXPECT_EQ(g.degree(0), 8);
  EXPECT_EQ(diameter(g), 2);
}

TEST(Generators, CompleteShape) {
  const Graph g = make_complete(6);
  EXPECT_EQ(g.edge_count(), 15u);
  EXPECT_EQ(diameter(g), 1);
}

TEST(Generators, GridShape) {
  const Graph g = make_grid(3, 4);
  EXPECT_EQ(g.node_count(), 12);
  EXPECT_EQ(g.edge_count(), 17u);  // 3*3 horizontal + 2*4 vertical
  EXPECT_EQ(diameter(g), 5);       // Manhattan corner to corner
}

TEST(Generators, BinaryTreeShape) {
  const Graph g = make_binary_tree(7);
  EXPECT_EQ(g.edge_count(), 6u);
  EXPECT_TRUE(is_connected(g));
  EXPECT_EQ(g.degree(0), 2);
  EXPECT_EQ(g.degree(3), 1);  // leaf
}

TEST(Generators, BarbellShape) {
  const Graph g = make_barbell(4, 2);
  EXPECT_EQ(g.node_count(), 10);
  // Two K_4 (6 edges each) + path edges 3-4, 4-5, 5-6.
  EXPECT_EQ(g.edge_count(), 15u);
  EXPECT_TRUE(is_connected(g));
}

TEST(Generators, ErdosRenyiIsAlwaysConnected) {
  for (std::uint64_t seed = 0; seed < 10; ++seed) {
    Rng rng(seed);
    const Graph g = make_erdos_renyi(30, 0.05, rng);  // sparse: stitching on
    EXPECT_TRUE(is_connected(g)) << "seed " << seed;
    EXPECT_EQ(g.node_count(), 30);
  }
}

TEST(Generators, ErdosRenyiExtremeProbabilities) {
  Rng rng(1);
  const Graph empty_p = make_erdos_renyi(8, 0.0, rng);
  EXPECT_TRUE(is_connected(empty_p));  // stitching makes a spanning structure
  EXPECT_EQ(empty_p.edge_count(), 7u);
  const Graph full_p = make_erdos_renyi(8, 1.0, rng);
  EXPECT_EQ(full_p.edge_count(), 28u);
}

TEST(Generators, BarabasiAlbertDegreeSkew) {
  Rng rng(2);
  const Graph g = make_barabasi_albert(200, 2, rng);
  EXPECT_TRUE(is_connected(g));
  const DegreeStats stats = degree_stats(g);
  EXPECT_GE(stats.min, 2);
  EXPECT_GT(stats.max, 4 * static_cast<NodeId>(stats.mean));  // hubs exist
}

TEST(Generators, WattsStrogatzKeepsDegreeMassAndConnectivity) {
  Rng rng(3);
  const Graph g = make_watts_strogatz(40, 4, 0.3, rng);
  EXPECT_EQ(g.node_count(), 40);
  EXPECT_EQ(g.edge_count(), 80u);  // rewiring preserves edge count
  EXPECT_TRUE(is_connected(g));
}

TEST(Generators, WattsStrogatzZeroBetaIsTheRingLattice) {
  Rng rng(4);
  const Graph g = make_watts_strogatz(20, 4, 0.0, rng);
  for (NodeId v = 0; v < 20; ++v) EXPECT_EQ(g.degree(v), 4);
}

TEST(Generators, Fig1LayoutMatchesThePaper) {
  const Fig1Layout layout = make_fig1_graph(4);
  const Graph& g = layout.graph;
  EXPECT_EQ(g.node_count(), 11);
  EXPECT_TRUE(is_connected(g));
  EXPECT_TRUE(g.has_edge(layout.a, layout.b));
  EXPECT_TRUE(g.has_edge(layout.a, layout.c));
  EXPECT_TRUE(g.has_edge(layout.c, layout.b));
  EXPECT_EQ(g.degree(layout.c), 2);  // C touches only A and B
  // A connects to every left-community node, B to every right one.
  for (NodeId v = 0; v < 4; ++v) EXPECT_TRUE(g.has_edge(layout.a, v));
  for (NodeId v = 4; v < 8; ++v) EXPECT_TRUE(g.has_edge(layout.b, v));
  // The paper's headline: C lies on no shortest path at all.
  const auto spbc = brandes_betweenness(g);
  EXPECT_DOUBLE_EQ(spbc[static_cast<std::size_t>(layout.c)], 0.0);
}

TEST(Generators, InvalidParametersThrow) {
  Rng rng(5);
  EXPECT_THROW(make_path(0), Error);
  EXPECT_THROW(make_cycle(2), Error);
  EXPECT_THROW(make_star(1), Error);
  EXPECT_THROW(make_grid(0, 3), Error);
  EXPECT_THROW(make_barbell(1, 0), Error);
  EXPECT_THROW(make_erdos_renyi(5, 1.5, rng), Error);
  EXPECT_THROW(make_barabasi_albert(3, 3, rng), Error);
  EXPECT_THROW(make_watts_strogatz(10, 3, 0.1, rng), Error);  // odd k
  EXPECT_THROW(make_fig1_graph(1), Error);
}

}  // namespace
}  // namespace rwbc
