#!/bin/sh
# Black-box tests for rwbc_cli's flag handling: invalid flags must exit
# non-zero with a single-line `error: ...` message (no backtrace, no abort),
# and the fault/reliability flags must run end to end.
#
# Usage: cli_test.sh <path-to-rwbc_cli>
set -u

CLI=${1:?usage: cli_test.sh <path-to-rwbc_cli>}
TMPDIR=$(mktemp -d)
trap 'rm -rf "$TMPDIR"' EXIT
FAILURES=0

fail() {
  echo "FAIL: $1" >&2
  FAILURES=$((FAILURES + 1))
}

# expect_error <description> <expected-substring> -- <args...>
# The command must exit non-zero and print exactly one stderr line that
# starts with "error: " and contains the expected substring.
expect_error() {
  desc=$1
  want=$2
  shift 3
  stderr_file="$TMPDIR/stderr"
  if "$CLI" "$@" >/dev/null 2>"$stderr_file"; then
    fail "$desc: expected non-zero exit"
    return
  fi
  lines=$(wc -l <"$stderr_file")
  if [ "$lines" -ne 1 ]; then
    fail "$desc: expected one error line, got $lines"
    return
  fi
  case "$(cat "$stderr_file")" in
    "error: "*"$want"*) ;;
    *) fail "$desc: stderr was '$(cat "$stderr_file")', want '*$want*'" ;;
  esac
}

expect_ok() {
  desc=$1
  shift
  if ! "$CLI" "$@" >"$TMPDIR/stdout" 2>"$TMPDIR/stderr"; then
    fail "$desc: expected exit 0, stderr: $(cat "$TMPDIR/stderr")"
  fi
}

GRAPH="$TMPDIR/graph.edges"
expect_ok "generate a test graph" generate er 14 3 "$GRAPH"
[ -s "$GRAPH" ] || fail "generate wrote no graph file"

# Invalid flag values: one-line errors, non-zero exit.
expect_error "drop-prob above 1" "--drop-prob" -- \
  --drop-prob 1.5 distributed "$GRAPH"
expect_error "negative drop-prob" "--drop-prob" -- \
  --drop-prob -0.1 distributed "$GRAPH"
expect_error "non-numeric dup-prob" "--dup-prob" -- \
  --dup-prob banana distributed "$GRAPH"
expect_error "malformed crash spec" "--crash" -- \
  --crash bogus distributed "$GRAPH"
expect_error "crash without round" "--crash" -- \
  --crash 3@ distributed "$GRAPH"
expect_error "flag missing its value" "requires a value" -- \
  distributed "$GRAPH" --drop-prob
expect_error "unknown flag" "unknown flag" -- \
  --frobnicate distributed "$GRAPH"
expect_error "unknown family" "unknown family" -- \
  generate nosuch 10 1
expect_error "crash node out of range" "crash" -- \
  --crash 99@5 distributed "$GRAPH" 4 10 3
expect_error "walks-per-edge of zero" "--walks-per-edge" -- \
  --walks-per-edge 0 distributed "$GRAPH" 4 10 3
expect_error "walks-per-edge missing its value" "requires a value" -- \
  distributed "$GRAPH" --walks-per-edge

# Coalescing knobs run end to end; --no-coalesce selects the legacy
# one-message-per-token wire, which must print identical output at
# wpepr = 1 (the batch header is zero bits wide there).
expect_ok "coalesced multi-token batches" \
  --walks-per-edge 8 distributed "$GRAPH" 4 10 3
expect_ok "legacy walk wire" --no-coalesce distributed "$GRAPH" 4 10 3
cp "$TMPDIR/stdout" "$TMPDIR/legacy.out"
expect_ok "coalesced wire at wpepr 1" distributed "$GRAPH" 4 10 3
cmp -s "$TMPDIR/legacy.out" "$TMPDIR/stdout" \
  || fail "coalesced wpepr=1 output differs from the legacy wire"

# Checkpoint flags: dependency validation and resume failure modes must be
# one-line errors too (the happy path lives in recovery_drill.sh).
expect_error "resume without a checkpoint dir" "requires --checkpoint-dir" -- \
  --resume distributed "$GRAPH" 4 10 3
expect_error "interval without a checkpoint dir" "requires --checkpoint-dir" -- \
  --checkpoint-every 8 distributed "$GRAPH" 4 10 3
expect_error "checkpoint-every missing its value" "requires a value" -- \
  distributed "$GRAPH" --checkpoint-every
mkdir -p "$TMPDIR/empty.ckpt"
expect_error "resume from an empty dir" "no usable checkpoint" -- \
  --checkpoint-dir "$TMPDIR/empty.ckpt" --resume distributed "$GRAPH" 4 10 3
mkdir -p "$TMPDIR/corrupt.ckpt"
printf 'not a checkpoint' >"$TMPDIR/corrupt.ckpt/ckpt-000000000008.rwbc"
expect_error "resume from a corrupt-only dir" "no usable checkpoint" -- \
  --checkpoint-dir "$TMPDIR/corrupt.ckpt" --resume distributed "$GRAPH" 4 10 3

# Checkpointing run end to end: snapshots land on disk, resume reproduces
# the uninterrupted stdout byte for byte.
expect_ok "uninterrupted reference run" distributed "$GRAPH" 4 10 3
cp "$TMPDIR/stdout" "$TMPDIR/reference.out"
expect_ok "checkpointing run" \
  --checkpoint-dir "$TMPDIR/run.ckpt" --checkpoint-every 8 \
  distributed "$GRAPH" 4 10 3
[ -n "$(ls "$TMPDIR/run.ckpt" 2>/dev/null)" ] \
  || fail "checkpointing run wrote no snapshots"
expect_ok "resume from final snapshot" \
  --checkpoint-dir "$TMPDIR/run.ckpt" --resume distributed "$GRAPH" 4 10 3
cmp -s "$TMPDIR/reference.out" "$TMPDIR/stdout" \
  || fail "resumed stdout differs from the uninterrupted run"

# Fault flags run end to end (small K/l keep this fast).
expect_ok "fault injection baseline" \
  --drop-prob 0.03 --dup-prob 0.01 --fault-seed 7 \
  distributed "$GRAPH" 4 10 3
expect_ok "self-healing transport" \
  --drop-prob 0.03 --reliable distributed "$GRAPH" 4 10 3
expect_ok "crash-stop schedule" \
  --crash 5@40 --reliable distributed "$GRAPH" 4 10 3
grep -q "rounds = " "$TMPDIR/stdout" || fail "distributed printed no metrics"

# Guardian handoff: the walks census line only appears with --guardian on,
# and a crash ridden out by guardian + reliable transport stays exact.
expect_ok "guardian census on a healthy run" \
  --guardian distributed "$GRAPH" 4 10 3
grep -q "^walks: expected = " "$TMPDIR/stdout" \
  || fail "guardian run printed no walks census"
grep -q "(exact)$" "$TMPDIR/stdout" \
  || fail "healthy guardian run was not exact"
expect_ok "guardian rides out a crash-stop" \
  --guardian --reliable --crash 5@40 --fault-seed 7 \
  distributed "$GRAPH" 4 10 3
grep -q "^walks: " "$TMPDIR/stdout" \
  || fail "guardian crash run printed no walks census"
grep -q "lost = " "$TMPDIR/stdout" \
  || fail "guardian crash run printed no loss accounting"
expect_ok "no-guardian wins when it comes last" \
  --guardian --no-guardian distributed "$GRAPH" 4 10 3
if grep -q "^walks: " "$TMPDIR/stdout"; then
  fail "--no-guardian still printed the walks census"
fi

if [ "$FAILURES" -ne 0 ]; then
  echo "$FAILURES CLI test(s) failed" >&2
  exit 1
fi
echo "all CLI tests passed"
