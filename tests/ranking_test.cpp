// Rank-agreement metrics: hand-checked values, ties, and degeneracies.
#include <gtest/gtest.h>

#include <cmath>

#include "centrality/ranking.hpp"
#include "common/error.hpp"

namespace rwbc {
namespace {

TEST(KendallTau, PerfectAgreementAndReversal) {
  const std::vector<double> a{1, 2, 3, 4};
  const std::vector<double> rev{4, 3, 2, 1};
  EXPECT_DOUBLE_EQ(kendall_tau(a, a), 1.0);
  EXPECT_DOUBLE_EQ(kendall_tau(a, rev), -1.0);
}

TEST(KendallTau, KnownMixedValue) {
  // Pairs: (1,2)&(2,1) discordant with others... direct count:
  // a = [1,2,3], b = [1,3,2]: pairs (0,1) C, (0,2) C, (1,2) D -> tau = 1/3.
  const std::vector<double> a{1, 2, 3};
  const std::vector<double> b{1, 3, 2};
  EXPECT_NEAR(kendall_tau(a, b), 1.0 / 3.0, 1e-12);
}

TEST(KendallTau, TieCorrection) {
  // b has a tie; tau-b uses the tie-corrected denominator.
  const std::vector<double> a{1, 2, 3};
  const std::vector<double> b{1, 2, 2};
  // concordant = 2 ((0,1),(0,2)); pair (1,2) tied in b only.
  // tau-b = 2 / sqrt(3 * 2).
  EXPECT_NEAR(kendall_tau(a, b), 2.0 / std::sqrt(6.0), 1e-12);
}

TEST(KendallTau, FullyTiedVectorThrows) {
  const std::vector<double> a{1, 2, 3};
  const std::vector<double> tied{5, 5, 5};
  EXPECT_THROW(kendall_tau(a, tied), Error);
}

TEST(SpearmanRho, MonotoneMapsGivePerfectRho) {
  const std::vector<double> a{1, 2, 3, 4, 5};
  const std::vector<double> b{10, 100, 1000, 10000, 100000};
  EXPECT_NEAR(spearman_rho(a, b), 1.0, 1e-12);
  const std::vector<double> rev{5, 4, 3, 2, 1};
  EXPECT_NEAR(spearman_rho(a, rev), -1.0, 1e-12);
}

TEST(SpearmanRho, AverageTieRanks) {
  const std::vector<double> a{1, 2, 3, 4};
  const std::vector<double> b{1, 2, 2, 4};
  const double rho = spearman_rho(a, b);
  EXPECT_GT(rho, 0.9);
  EXPECT_LT(rho, 1.0);
}

TEST(TopKOverlap, CountsSharedLeaders) {
  const std::vector<double> a{9, 8, 1, 2, 7};
  const std::vector<double> b{9, 1, 8, 2, 7};
  // top-2 of a = {0, 1}; top-2 of b = {0, 2} -> overlap 1/2.
  EXPECT_DOUBLE_EQ(top_k_overlap(a, b, 2), 0.5);
  EXPECT_DOUBLE_EQ(top_k_overlap(a, a, 3), 1.0);
}

TEST(TopKOverlap, RejectsBadK) {
  const std::vector<double> a{1, 2};
  EXPECT_THROW(top_k_overlap(a, a, 0), Error);
  EXPECT_THROW(top_k_overlap(a, a, 3), Error);
}

TEST(RankOrder, SortsDescendingWithIndexTieBreak) {
  const std::vector<double> scores{3, 7, 7, 1};
  const auto order = rank_order(scores);
  ASSERT_EQ(order.size(), 4u);
  EXPECT_EQ(order[0], 1u);  // 7 at lower index first
  EXPECT_EQ(order[1], 2u);
  EXPECT_EQ(order[2], 0u);
  EXPECT_EQ(order[3], 3u);
}

}  // namespace
}  // namespace rwbc
