// Edmonds-Karp on unit capacities: Menger equivalence and flow validity.
#include <gtest/gtest.h>

#include "centrality/maxflow.hpp"
#include "graph/generators.hpp"

namespace rwbc {
namespace {

TEST(MaxFlow, PathCarriesOneUnit) {
  const Graph g = make_path(5);
  EXPECT_EQ(max_flow(g, 0, 4).value, 1);
}

TEST(MaxFlow, CycleCarriesTwoUnits) {
  const Graph g = make_cycle(6);
  EXPECT_EQ(max_flow(g, 0, 3).value, 2);
}

TEST(MaxFlow, CompleteGraphValueIsDegree) {
  const Graph g = make_complete(5);
  EXPECT_EQ(max_flow(g, 0, 4).value, 4);  // n-1 edge-disjoint paths
}

TEST(MaxFlow, StarLeafPairsCarryOne) {
  const Graph g = make_star(6);
  EXPECT_EQ(max_flow(g, 1, 5).value, 1);
  EXPECT_EQ(max_flow(g, 0, 3).value, 1);
}

TEST(MaxFlow, DisconnectedPairCarriesZero) {
  GraphBuilder b(4);
  b.add_edge(0, 1).add_edge(2, 3);
  EXPECT_EQ(max_flow(b.build(), 0, 3).value, 0);
}

TEST(MaxFlow, FlowMatrixIsAntisymmetricAndConserved) {
  const Graph g = make_grid(3, 3);
  const NodeId s = 0, t = 8;
  const MaxFlowResult result = max_flow(g, s, t);
  const auto n = static_cast<std::size_t>(g.node_count());
  for (std::size_t u = 0; u < n; ++u) {
    for (std::size_t v = 0; v < n; ++v) {
      EXPECT_DOUBLE_EQ(result.flow(u, v), -result.flow(v, u));
    }
  }
  // Conservation at interior nodes; +/- value at the endpoints.
  for (NodeId v = 0; v < g.node_count(); ++v) {
    double net_out = 0.0;
    for (NodeId w : g.neighbors(v)) {
      net_out += result.flow(static_cast<std::size_t>(v),
                             static_cast<std::size_t>(w));
    }
    if (v == s) {
      EXPECT_DOUBLE_EQ(net_out, static_cast<double>(result.value));
    } else if (v == t) {
      EXPECT_DOUBLE_EQ(net_out, -static_cast<double>(result.value));
    } else {
      EXPECT_DOUBLE_EQ(net_out, 0.0);
    }
  }
}

TEST(MaxFlow, CapacitiesAreRespected) {
  const Graph g = make_cycle(5);
  const MaxFlowResult result = max_flow(g, 0, 2);
  for (const Edge& e : g.edges()) {
    const double f = result.flow(static_cast<std::size_t>(e.u),
                                 static_cast<std::size_t>(e.v));
    EXPECT_LE(std::abs(f), 1.0);
  }
}

TEST(MaxFlow, InvalidEndpointsThrow) {
  const Graph g = make_path(3);
  EXPECT_THROW(max_flow(g, 0, 0), Error);
  EXPECT_THROW(max_flow(g, 0, 5), Error);
  EXPECT_THROW(max_flow(g, -1, 2), Error);
}

}  // namespace
}  // namespace rwbc
