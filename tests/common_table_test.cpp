// Table formatter: alignment, padding, and cell formatting.
#include <gtest/gtest.h>

#include <sstream>

#include "common/table.hpp"

namespace rwbc {
namespace {

TEST(Table, RendersAlignedColumns) {
  Table t({"name", "value"});
  t.add_row({"alpha", "1"});
  t.add_row({"b", "12345"});
  std::ostringstream os;
  t.print(os);
  const std::string out = os.str();
  // Header, separator, two rows.
  EXPECT_EQ(std::count(out.begin(), out.end(), '\n'), 4);
  EXPECT_NE(out.find("| alpha |"), std::string::npos);
  EXPECT_NE(out.find("| 12345 |"), std::string::npos);
}

TEST(Table, ShortRowsArePadded) {
  Table t({"a", "b", "c"});
  t.add_row({"only"});
  std::ostringstream os;
  t.print(os);
  EXPECT_NE(os.str().find("only"), std::string::npos);
  EXPECT_EQ(t.row_count(), 1u);
}

TEST(Table, FormatsNumbers) {
  EXPECT_EQ(Table::fmt(3.14159, 2), "3.14");
  EXPECT_EQ(Table::fmt(std::int64_t{-7}), "-7");
  EXPECT_EQ(Table::fmt(std::uint64_t{7}), "7");
  EXPECT_EQ(Table::fmt(42), "42");
}

}  // namespace
}  // namespace rwbc
