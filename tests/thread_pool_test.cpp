// The fork-join pool under the CONGEST scheduler: construction/teardown,
// static partition coverage, serial-equivalent exception propagation, reuse
// across many rounds, and tasks far shorter than scheduling overhead.
#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <set>
#include <stdexcept>
#include <thread>
#include <vector>

#include "common/error.hpp"
#include "common/thread_pool.hpp"

namespace rwbc {
namespace {

TEST(ThreadPool, ConstructionAndTeardownAcrossSizes) {
  for (std::size_t threads : {1u, 2u, 3u, 4u, 8u, 16u}) {
    ThreadPool pool(threads);
    EXPECT_EQ(pool.size(), threads);
  }  // destructor joins; leaking or deadlocking here hangs the test
}

TEST(ThreadPool, ZeroThreadsIsRejected) {
  EXPECT_THROW(ThreadPool(0), Error);
}

TEST(ThreadPool, HardwareThreadsIsAtLeastOne) {
  EXPECT_GE(ThreadPool::hardware_threads(), 1u);
}

TEST(ThreadPool, EveryIndexRunsExactlyOnce) {
  for (std::size_t threads : {1u, 2u, 3u, 8u}) {
    ThreadPool pool(threads);
    for (std::size_t count : {0u, 1u, 2u, 7u, 8u, 100u, 1000u}) {
      std::vector<std::atomic<int>> hits(count);
      pool.parallel_for(count,
                        [&](std::size_t i) { hits[i].fetch_add(1); });
      for (std::size_t i = 0; i < count; ++i) {
        EXPECT_EQ(hits[i].load(), 1) << "threads=" << threads << " i=" << i;
      }
    }
  }
}

TEST(ThreadPool, CountSmallerThanPoolLeavesChunksEmpty) {
  ThreadPool pool(8);
  std::atomic<std::size_t> ran{0};
  pool.parallel_for(3, [&](std::size_t) { ran.fetch_add(1); });
  EXPECT_EQ(ran.load(), 3u);
}

TEST(ThreadPool, ExceptionFromWorkerTaskPropagatesToCaller) {
  ThreadPool pool(4);
  EXPECT_THROW(
      pool.parallel_for(100,
                        [](std::size_t i) {
                          if (i == 97) {  // lands in the last worker's chunk
                            throw std::runtime_error("worker boom");
                          }
                        }),
      std::runtime_error);
}

TEST(ThreadPool, SmallestFailingIndexWinsLikeASerialLoop) {
  // Failures at 5 (chunk 0, the caller) and 97 (a worker chunk): a serial
  // loop would throw at 5 first, so the pool must surface that one.
  ThreadPool pool(4);
  try {
    pool.parallel_for(100, [](std::size_t i) {
      if (i == 5) throw std::runtime_error("first");
      if (i == 97) throw std::runtime_error("second");
    });
    FAIL() << "expected an exception";
  } catch (const std::runtime_error& e) {
    EXPECT_STREQ(e.what(), "first");
  }
}

TEST(ThreadPool, PoolIsReusableAfterAnException) {
  ThreadPool pool(3);
  EXPECT_THROW(pool.parallel_for(
                   10, [](std::size_t) { throw std::runtime_error("x"); }),
               std::runtime_error);
  std::atomic<std::size_t> ran{0};
  pool.parallel_for(10, [&](std::size_t) { ran.fetch_add(1); });
  EXPECT_EQ(ran.load(), 10u);
}

TEST(ThreadPool, ReuseAcrossManyParallelForCalls) {
  // The simulator calls parallel_for once per round; a long run is tens of
  // thousands of fork-joins on one pool.
  ThreadPool pool(4);
  std::vector<std::uint64_t> cells(64, 0);
  const int iterations = 20'000;
  for (int it = 0; it < iterations; ++it) {
    pool.parallel_for(cells.size(), [&](std::size_t i) { ++cells[i]; });
  }
  for (std::uint64_t c : cells) {
    EXPECT_EQ(c, static_cast<std::uint64_t>(iterations));
  }
}

TEST(ThreadPool, StressTasksShorterThanSchedulingOverhead) {
  // Each body is a single add — far below the cost of a fork-join — so this
  // hammers the wake/sleep handshake rather than the work itself.
  ThreadPool pool(8);
  std::atomic<std::uint64_t> sum{0};
  const int iterations = 5'000;
  for (int it = 0; it < iterations; ++it) {
    pool.parallel_for(8, [&](std::size_t i) {
      sum.fetch_add(i + 1, std::memory_order_relaxed);
    });
  }
  EXPECT_EQ(sum.load(), static_cast<std::uint64_t>(iterations) * 36u);
}

TEST(ThreadPool, PartitionIsStaticAndContiguous) {
  // Record which thread ran each index: every chunk must be one contiguous
  // ascending range, the arithmetic partition [t*count/T, (t+1)*count/T).
  const std::size_t threads = 4;
  const std::size_t count = 103;
  ThreadPool pool(threads);
  std::vector<std::thread::id> owner(count);
  pool.parallel_for(count,
                    [&](std::size_t i) { owner[i] = std::this_thread::get_id(); });
  std::set<std::thread::id> seen;
  for (std::size_t t = 0; t < threads; ++t) {
    const std::size_t begin = t * count / threads;
    const std::size_t end = (t + 1) * count / threads;
    for (std::size_t i = begin + 1; i < end; ++i) {
      EXPECT_EQ(owner[i], owner[begin]) << "chunk " << t << " split at " << i;
    }
    if (begin < end) seen.insert(owner[begin]);
  }
  EXPECT_LE(seen.size(), threads);
}

}  // namespace
}  // namespace rwbc
