#!/bin/sh
# Crash-recovery drill: run rwbc_cli with checkpointing enabled, SIGKILL it
# mid-run (--kill-at-round), resume from the snapshot directory, and assert
# the resumed stdout is byte-identical to an uninterrupted golden run.
# Scenarios:
#   1. fault-free run, resumed at a different thread count
#   2. drop+dup fault plan with the self-healing transport
#   3. newest snapshot truncated by hand -> supervisor falls back to the
#      previous good one, output still golden
#   4. coalesced multi-token batches (--walks-per-edge 8) under faults with
#      the reliable transport: SIGKILL lands mid-counting while walk pools
#      and retransmission windows still hold packed batch payloads
#   5. guardian handoff after a crash-stop: SIGKILL lands after the guardian
#      has adopted its dead ward's orphaned walks, so the snapshot carries
#      ward ledgers, custody queues, and adopted orphans mid-replay; the
#      resume must be bit-identical at threads 1, 8, and -1
#
# Usage: recovery_drill.sh <path-to-rwbc_cli>
# RWBC_DRILL_DIR: when set, scratch space lives there and is kept on
# failure so CI can upload it as an artifact (cleaned on success).
set -u

CLI=${1:?usage: recovery_drill.sh <path-to-rwbc_cli>}

if [ -n "${RWBC_DRILL_DIR:-}" ]; then
  WORK="$RWBC_DRILL_DIR"
  rm -rf "$WORK"
  mkdir -p "$WORK"
else
  WORK=$(mktemp -d)
  trap 'rm -rf "$WORK"' EXIT
fi
FAILURES=0

fail() {
  echo "FAIL: $1" >&2
  FAILURES=$((FAILURES + 1))
}

GRAPH="$WORK/graph.edges"
"$CLI" generate ws 16 7 "$GRAPH" >/dev/null 2>&1 \
  || { echo "FAIL: could not generate drill graph" >&2; exit 1; }

K=4
L=30
SEED=9

# drill <name> <kill-round> <resume-threads> [fault flags...]
#
# Golden run (uninterrupted), then a checkpointing run killed by SIGKILL at
# the given cumulative round, then one resume per comma-separated thread
# count in <resume-threads>, each of whose stdout must match golden.
drill() {
  name=$1
  kill_round=$2
  resume_threads=$3
  shift 3
  dir="$WORK/$name.ckpt"
  golden="$WORK/$name.golden"

  "$CLI" "$@" distributed "$GRAPH" "$K" "$L" "$SEED" \
    >"$golden" 2>"$WORK/$name.golden.err" \
    || { fail "$name: golden run failed: $(cat "$WORK/$name.golden.err")"; return; }

  ("$CLI" "$@" --checkpoint-dir "$dir" --checkpoint-every 8 \
    --kill-at-round "$kill_round" distributed "$GRAPH" "$K" "$L" "$SEED" \
    >"$WORK/$name.killed.out" 2>&1)
  status=$?
  [ "$status" -eq 137 ] \
    || fail "$name: expected SIGKILL exit 137 at round $kill_round, got $status"
  [ -n "$(ls "$dir" 2>/dev/null)" ] \
    || { fail "$name: kill left no snapshot on disk"; return; }

  for threads in $(echo "$resume_threads" | tr ',' ' '); do
    "$CLI" "$@" --threads "$threads" --checkpoint-dir "$dir" --resume \
      distributed "$GRAPH" "$K" "$L" "$SEED" \
      >"$WORK/$name.resumed.$threads" 2>"$WORK/$name.resumed.$threads.err" \
      || { fail "$name: resume (threads $threads) failed: $(cat "$WORK/$name.resumed.$threads.err")"; continue; }
    cmp -s "$golden" "$WORK/$name.resumed.$threads" \
      || fail "$name: resumed output (threads $threads) differs from the uninterrupted run"
  done
}

# Scenario 1: fault-free; the killed run is serial, the resume uses one
# thread per core — resume determinism must hold across thread counts.
drill plain 90 -1

# Scenario 2: message loss + duplication healed by the reliable transport;
# the checkpoint must carry the fault injector's RNG and the
# retransmission windows for the resume to replay identically.
drill faulty 110 0 --drop-prob 0.05 --dup-prob 0.05 --fault-seed 321 --reliable

# Scenario 3: corrupt the newest snapshot from scenario 1 (truncate to 40
# bytes — fails the envelope length check) and resume again: the
# supervisor must fall back to the previous good snapshot.
DIR="$WORK/plain.ckpt"
if [ -d "$DIR" ]; then
  count=$(ls "$DIR" | wc -l)
  if [ "$count" -ge 2 ]; then
    newest="$DIR/$(ls "$DIR" | sort | tail -1)"
    dd if="$newest" of="$newest.trunc" bs=1 count=40 2>/dev/null
    mv "$newest.trunc" "$newest"
    "$CLI" --checkpoint-dir "$DIR" --resume \
      distributed "$GRAPH" "$K" "$L" "$SEED" \
      >"$WORK/fallback.resumed" 2>"$WORK/fallback.resumed.err" \
      || fail "fallback: resume failed: $(cat "$WORK/fallback.resumed.err")"
    cmp -s "$WORK/plain.golden" "$WORK/fallback.resumed" \
      || fail "fallback: output differs after corrupt-newest fallback"
  else
    fail "fallback: expected >= 2 snapshots in rotation, found $count"
  fi
fi

# Scenario 4: the coalesced hot path (8 walk tokens per edge per round)
# with drops + duplication healed by the reliable transport.  The kill
# round sits mid counting phase, so the sealed snapshot carries SoA walk
# pools and packed multi-token batch payloads parked in retransmission
# windows; the resume (at one thread per core) must replay those batches
# bit-identically.  tests/checkpoint_test.cpp (CoalescedCheckpointResume)
# asserts the same shape in-process with phase-exact kill placement.
drill coalesced 90 -1 --walks-per-edge 8 \
  --drop-prob 0.05 --dup-prob 0.05 --fault-seed 321 --reliable

# Scenario 5: crash-lossless guardian handoff.  Node 5 crash-stops at
# cumulative round 38 while it still holds live walks; its guardian's
# probes exhaust the reliable link's retry budget and the guardian adopts
# the mirrored orphans around round 80 (the run reports adopted = 1,
# lost = 0).  The SIGKILL at round 90 lands just after adoption, so the
# newest snapshot (round 88) carries ward ledgers, the transmit-custody
# queues, and an adopted orphan mid-replay.  Resumes at one, eight, and
# one-per-core threads must all reproduce the golden run byte-for-byte.
drill guardian 90 1,8,-1 --guardian --reliable \
  --crash 5@38 --fault-seed 321

if [ "$FAILURES" -ne 0 ]; then
  echo "$FAILURES recovery drill(s) failed (scratch kept at $WORK)" >&2
  trap - EXIT
  exit 1
fi
[ -n "${RWBC_DRILL_DIR:-}" ] && rm -rf "$WORK"
echo "all recovery drills passed"
