// Graph core: builder semantics (dedup, canonical form, validation) and
// adjacency queries.
#include <gtest/gtest.h>

#include "graph/graph.hpp"

namespace rwbc {
namespace {

TEST(GraphBuilder, BuildsEmptyGraph) {
  const Graph g = GraphBuilder(0).build();
  EXPECT_EQ(g.node_count(), 0);
  EXPECT_EQ(g.edge_count(), 0u);
}

TEST(GraphBuilder, DeduplicatesEdgesInBothOrientations) {
  GraphBuilder b(3);
  b.add_edge(0, 1).add_edge(1, 0).add_edge(0, 1);
  EXPECT_EQ(b.edge_count(), 1u);
  const Graph g = b.build();
  EXPECT_EQ(g.edge_count(), 1u);
  EXPECT_EQ(g.degree(0), 1);
  EXPECT_EQ(g.degree(1), 1);
}

TEST(GraphBuilder, RejectsSelfLoops) {
  GraphBuilder b(2);
  EXPECT_THROW(b.add_edge(1, 1), Error);
}

TEST(GraphBuilder, RejectsOutOfRangeEndpoints) {
  GraphBuilder b(2);
  EXPECT_THROW(b.add_edge(0, 2), Error);
  EXPECT_THROW(b.add_edge(-1, 0), Error);
}

TEST(GraphBuilder, HasEdgeTracksAdditions) {
  GraphBuilder b(4);
  b.add_edge(2, 3);
  EXPECT_TRUE(b.has_edge(2, 3));
  EXPECT_TRUE(b.has_edge(3, 2));
  EXPECT_FALSE(b.has_edge(0, 1));
  EXPECT_FALSE(b.has_edge(2, 2));
}

TEST(GraphBuilder, AddEdgesBulkInsert) {
  GraphBuilder b(4);
  const Edge edges[] = {{0, 1}, {1, 2}, {2, 3}};
  b.add_edges(edges);
  EXPECT_EQ(b.edge_count(), 3u);
}

TEST(GraphBuilder, IsReusableAfterBuild) {
  GraphBuilder b(3);
  b.add_edge(0, 1);
  const Graph g1 = b.build();
  b.add_edge(1, 2);
  const Graph g2 = b.build();
  EXPECT_EQ(g1.edge_count(), 1u);
  EXPECT_EQ(g2.edge_count(), 2u);
}

TEST(Graph, NeighborsAreSortedAndComplete) {
  GraphBuilder b(5);
  b.add_edge(2, 4).add_edge(2, 0).add_edge(2, 3).add_edge(2, 1);
  const Graph g = b.build();
  const auto ns = g.neighbors(2);
  ASSERT_EQ(ns.size(), 4u);
  EXPECT_EQ(ns[0], 0);
  EXPECT_EQ(ns[1], 1);
  EXPECT_EQ(ns[2], 3);
  EXPECT_EQ(ns[3], 4);
}

TEST(Graph, EdgesAreCanonicalAndSorted) {
  GraphBuilder b(4);
  b.add_edge(3, 1).add_edge(2, 0).add_edge(1, 0);
  const Graph g = b.build();
  const auto edges = g.edges();
  ASSERT_EQ(edges.size(), 3u);
  EXPECT_EQ(edges[0], (Edge{0, 1}));
  EXPECT_EQ(edges[1], (Edge{0, 2}));
  EXPECT_EQ(edges[2], (Edge{1, 3}));
}

TEST(Graph, HasEdgeAndDegreeAndMaxDegree) {
  GraphBuilder b(4);
  b.add_edge(0, 1).add_edge(0, 2).add_edge(0, 3);
  const Graph g = b.build();
  EXPECT_TRUE(g.has_edge(0, 2));
  EXPECT_FALSE(g.has_edge(1, 2));
  EXPECT_EQ(g.degree(0), 3);
  EXPECT_EQ(g.degree(1), 1);
  EXPECT_EQ(g.max_degree(), 3);
  EXPECT_EQ(g.degree_sum(), 6u);
}

TEST(Graph, OutOfRangeQueriesThrow) {
  const Graph g = GraphBuilder(2).build();
  EXPECT_THROW(g.degree(2), Error);
  EXPECT_THROW(g.neighbors(-1), Error);
  EXPECT_THROW(g.has_edge(0, 5), Error);
}

}  // namespace
}  // namespace rwbc
