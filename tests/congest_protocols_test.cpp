// CONGEST building blocks: leader election, BFS-tree construction,
// broadcast, and convergecast — each checked against a centrally computed
// reference on several topologies.
#include <gtest/gtest.h>

#include <numeric>

#include "common/rng.hpp"
#include "congest/protocols/bfs_tree.hpp"
#include "congest/protocols/broadcast.hpp"
#include "congest/protocols/convergecast.hpp"
#include "congest/protocols/leader_election.hpp"
#include "graph/generators.hpp"
#include "graph/properties.hpp"

namespace rwbc {
namespace {

CongestConfig test_config() {
  CongestConfig config;
  config.seed = 3;
  return config;
}

class ProtocolSuite : public ::testing::TestWithParam<const char*> {
 protected:
  Graph make_graph() const {
    const std::string name = GetParam();
    Rng rng(17);
    if (name == "path") return make_path(17);
    if (name == "cycle") return make_cycle(16);
    if (name == "star") return make_star(15);
    if (name == "grid") return make_grid(4, 5);
    if (name == "tree") return make_binary_tree(20);
    if (name == "er") return make_erdos_renyi(24, 0.2, rng);
    if (name == "ba") return make_barabasi_albert(24, 2, rng);
    throw std::runtime_error("unknown topology " + name);
  }
};

TEST_P(ProtocolSuite, ElectionFindsMinimumId) {
  const Graph g = make_graph();
  const auto result = run_leader_election(
      g, test_config(), static_cast<std::uint64_t>(g.node_count()));
  EXPECT_EQ(result.leader, 0);  // dense ids: 0 is the global minimum
  EXPECT_GT(result.metrics.rounds, 0u);
}

TEST_P(ProtocolSuite, BfsTreeMatchesCentralBfs) {
  const Graph g = make_graph();
  const NodeId root = g.node_count() / 2;
  const auto result = run_bfs_tree(
      g, root, test_config(), static_cast<std::uint64_t>(g.node_count()) + 2);
  const auto dist = bfs_distances(g, root);
  EXPECT_EQ(result.tree.root, root);
  EXPECT_EQ(result.tree.parent[static_cast<std::size_t>(root)], -1);
  NodeId max_depth = 0;
  for (NodeId v = 0; v < g.node_count(); ++v) {
    const auto vi = static_cast<std::size_t>(v);
    EXPECT_EQ(result.tree.depth[vi], dist[vi]) << "node " << v;
    max_depth = std::max(max_depth, result.tree.depth[vi]);
    if (v != root) {
      const NodeId p = result.tree.parent[vi];
      ASSERT_GE(p, 0);
      EXPECT_TRUE(g.has_edge(v, p));
      EXPECT_EQ(dist[static_cast<std::size_t>(p)], dist[vi] - 1);
      // The child list of the parent contains v.
      const auto& siblings = result.tree.children[static_cast<std::size_t>(p)];
      EXPECT_NE(std::find(siblings.begin(), siblings.end(), v),
                siblings.end());
    }
  }
  EXPECT_EQ(result.tree.height, max_depth);
  // Tree edge count: exactly n - 1 child links.
  std::size_t child_links = 0;
  for (const auto& kids : result.tree.children) child_links += kids.size();
  EXPECT_EQ(child_links, static_cast<std::size_t>(g.node_count()) - 1);
}

TEST_P(ProtocolSuite, BroadcastReachesEveryNode) {
  const Graph g = make_graph();
  const auto bfs = run_bfs_tree(
      g, 0, test_config(), static_cast<std::uint64_t>(g.node_count()) + 2);
  const std::uint64_t value = 0x2fu;
  const auto result = run_broadcast(g, bfs.tree, value, 8, test_config());
  EXPECT_EQ(result.value, value);
  // Broadcast takes about `height` rounds (plus the final empty round).
  EXPECT_LE(result.metrics.rounds,
            static_cast<std::uint64_t>(bfs.tree.height) + 3);
}

TEST_P(ProtocolSuite, ConvergecastSumAndMaxMatchDirectAggregates) {
  const Graph g = make_graph();
  const auto bfs = run_bfs_tree(
      g, 0, test_config(), static_cast<std::uint64_t>(g.node_count()) + 2);
  std::vector<std::uint64_t> values(static_cast<std::size_t>(g.node_count()));
  for (std::size_t v = 0; v < values.size(); ++v) {
    values[v] = (v * 7 + 3) % 23;
  }
  const std::uint64_t expected_sum =
      std::accumulate(values.begin(), values.end(), std::uint64_t{0});
  const std::uint64_t expected_max =
      *std::max_element(values.begin(), values.end());
  const auto sum = run_convergecast(g, bfs.tree, values, AggregateOp::kSum,
                                    32, test_config());
  const auto max = run_convergecast(g, bfs.tree, values, AggregateOp::kMax,
                                    32, test_config());
  EXPECT_EQ(sum.aggregate, expected_sum);
  EXPECT_EQ(max.aggregate, expected_max);
}

INSTANTIATE_TEST_SUITE_P(Topologies, ProtocolSuite,
                         ::testing::Values("path", "cycle", "star", "grid",
                                           "tree", "er", "ba"),
                         [](const auto& suite_info) { return suite_info.param; });

TEST(LeaderElection, SingleNodeElectsItself) {
  GraphBuilder builder(1);
  const Graph g = builder.build();
  const auto result = run_leader_election(g, test_config(), 1);
  EXPECT_EQ(result.leader, 0);
}

TEST(BfsTree, RejectsDisconnectedGraphs) {
  GraphBuilder builder(4);
  builder.add_edge(0, 1).add_edge(2, 3);
  EXPECT_THROW(run_bfs_tree(builder.build(), 0, test_config(), 6), Error);
}

TEST(Broadcast, RejectsOversizedValue) {
  const Graph g = make_path(3);
  const auto bfs = run_bfs_tree(g, 0, test_config(), 5);
  EXPECT_THROW(run_broadcast(g, bfs.tree, 256, 8, test_config()), Error);
}

TEST(Convergecast, RejectsWrongValueCount) {
  const Graph g = make_path(3);
  const auto bfs = run_bfs_tree(g, 0, test_config(), 5);
  const std::vector<std::uint64_t> wrong(2, 1);
  EXPECT_THROW(run_convergecast(g, bfs.tree, wrong, AggregateOp::kSum, 8,
                                test_config()),
               Error);
}

}  // namespace
}  // namespace rwbc
