// Brandes shortest-path betweenness: closed forms and the Fig. 1 contrast.
#include <gtest/gtest.h>

#include "centrality/brandes.hpp"
#include "graph/generators.hpp"

namespace rwbc {
namespace {

TEST(Brandes, PathMiddleNode) {
  const Graph g = make_path(5);
  BrandesOptions raw;
  raw.normalized = false;
  const auto b = brandes_betweenness(g, raw);
  // Node 2 lies on pairs {0,1}x{3,4} = 4 unordered pairs, counted twice.
  EXPECT_DOUBLE_EQ(b[2], 8.0);
  EXPECT_DOUBLE_EQ(b[0], 0.0);
  EXPECT_DOUBLE_EQ(b[4], 0.0);
}

TEST(Brandes, StarHubCarriesAllPairs) {
  const NodeId n = 8;
  const Graph g = make_star(n);
  const auto b = brandes_betweenness(g);  // normalized
  EXPECT_DOUBLE_EQ(b[0], 1.0);            // every leaf pair routes via hub
  for (NodeId v = 1; v < n; ++v) {
    EXPECT_DOUBLE_EQ(b[static_cast<std::size_t>(v)], 0.0);
  }
}

TEST(Brandes, CompleteGraphAllZero) {
  const auto b = brandes_betweenness(make_complete(6));
  for (double v : b) EXPECT_DOUBLE_EQ(v, 0.0);
}

TEST(Brandes, CycleSplitsEqually) {
  const auto b = brandes_betweenness(make_cycle(5));
  for (std::size_t v = 1; v < b.size(); ++v) {
    EXPECT_NEAR(b[v], b[0], 1e-12);
  }
  EXPECT_GT(b[0], 0.0);
}

TEST(Brandes, MultiplicityIsSplitAcrossShortestPaths) {
  // C4: pair (0,2) has two shortest paths (via 1 and via 3); each carries
  // sigma-share 1/2, both directions -> raw 1.0 per middle node.
  BrandesOptions raw;
  raw.normalized = false;
  const auto b = brandes_betweenness(make_cycle(4), raw);
  EXPECT_DOUBLE_EQ(b[1], 1.0);
  EXPECT_DOUBLE_EQ(b[3], 1.0);
}

TEST(Brandes, Fig1NodeCIsInvisibleToShortestPaths) {
  const Fig1Layout layout = make_fig1_graph(6);
  const auto b = brandes_betweenness(layout.graph);
  EXPECT_DOUBLE_EQ(b[static_cast<std::size_t>(layout.c)], 0.0);
  EXPECT_GT(b[static_cast<std::size_t>(layout.a)], 0.2);
  EXPECT_GT(b[static_cast<std::size_t>(layout.b)], 0.2);
}

TEST(Brandes, HandlesDisconnectedGraphs) {
  GraphBuilder builder(6);
  builder.add_edge(0, 1).add_edge(1, 2).add_edge(3, 4).add_edge(4, 5);
  BrandesOptions raw;
  raw.normalized = false;
  const auto b = brandes_betweenness(builder.build(), raw);
  EXPECT_DOUBLE_EQ(b[1], 2.0);  // only the pair (0,2), both directions
  EXPECT_DOUBLE_EQ(b[4], 2.0);
}

TEST(Brandes, TinyGraphsAreAllZero) {
  const auto b = brandes_betweenness(make_path(2));
  EXPECT_DOUBLE_EQ(b[0], 0.0);
  EXPECT_DOUBLE_EQ(b[1], 0.0);
}

}  // namespace
}  // namespace rwbc
