// The arena-backed message path (congest/arena.hpp).
//
// Contract under test:
//   1. The count-then-place scheme is placement-order invariant: the final
//      inbox slices are a pure function of the outboxes.  We drive
//      DeliveryPlanner + RoundArena directly and place senders' blocks in
//      many shuffled orders — the delivered bytes never change.  This is
//      the arena's half of the determinism argument (DESIGN.md section 8);
//      the thread-equivalence suite covers the scheduling half.
//   2. Inboxes come out in the canonical (sender id, send order) sequence.
//   3. Slice geometry is exact: offsets partition the message buffer with
//      no gaps or overlaps, and totals match the tallies.
//   4. At scale (n = 20k, the ISSUE floor for the sanitizer job) a full
//      Network run over the arena path is bit-identical between the serial
//      scheduler and a hardware-sized pool, down to a per-node digest of
//      every delivered payload.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <memory>
#include <numeric>
#include <vector>

#include "common/rng.hpp"
#include "congest/arena.hpp"
#include "congest/network.hpp"
#include "graph/generators.hpp"

namespace rwbc {
namespace {

// One synthetic outbox entry, mirroring ContextImpl::PendingSend plus the
// payload bytes the context would have appended to its byte stream.
struct SimSend {
  std::uint32_t slot = 0;  // neighbour index at the sender
  NodeId to = -1;
  int bit_count = 0;
  std::vector<std::uint8_t> payload;
};

// A delivered message, flattened for comparison.
struct Delivered {
  NodeId from = -1;
  NodeId to = -1;
  int bit_count = 0;
  std::vector<std::uint8_t> payload;

  bool operator==(const Delivered& other) const = default;
};

// Deterministic synthetic outboxes: per directed edge, 0-3 messages of 0-6
// payload bytes each, bit counts not always byte-aligned.
std::vector<std::vector<SimSend>> make_outboxes(const Graph& g,
                                                std::uint64_t seed) {
  std::vector<std::vector<SimSend>> outboxes(
      static_cast<std::size_t>(g.node_count()));
  for (NodeId u = 0; u < g.node_count(); ++u) {
    Rng rng(seed, u);
    const auto neighbors = g.neighbors(u);
    for (std::uint32_t s = 0; s < neighbors.size(); ++s) {
      const std::uint64_t count = rng.next_below(4);
      for (std::uint64_t k = 0; k < count; ++k) {
        SimSend send;
        send.slot = s;
        send.to = neighbors[s];
        const std::size_t len =
            static_cast<std::size_t>(rng.next_below(7));
        send.payload.resize(len);
        for (std::uint8_t& b : send.payload) {
          b = static_cast<std::uint8_t>(rng.next_below(256));
        }
        // Any value in [8 len - 7, 8 len] rounds up to exactly len bytes.
        send.bit_count =
            len == 0 ? 0 : static_cast<int>(8 * len - rng.next_below(8));
        outboxes[static_cast<std::size_t>(u)].push_back(std::move(send));
      }
    }
  }
  return outboxes;
}

// Tallies the outboxes into the planner, exactly as ContextImpl::send does.
void tally(DeliveryPlanner& planner,
           const std::vector<std::vector<SimSend>>& outboxes) {
  planner.zero_round(nullptr);
  for (NodeId u = 0; u < static_cast<NodeId>(outboxes.size()); ++u) {
    EdgeTally* tallies = planner.edge_tally(u);
    for (const SimSend& send : outboxes[static_cast<std::size_t>(u)]) {
      tallies[send.slot].bits += static_cast<std::uint64_t>(send.bit_count);
      tallies[send.slot].msgs += 1;
      tallies[send.slot].bytes +=
          static_cast<std::uint32_t>(send.payload.size());
    }
  }
}

// Places every sender's block in the given sender order, mirroring
// Network::place_messages (fault-free path), then flattens all inboxes.
std::vector<std::vector<Delivered>> place_and_collect(
    const Graph& g, DeliveryPlanner& planner, RoundArena& arena,
    const std::vector<std::vector<SimSend>>& outboxes,
    const std::vector<NodeId>& sender_order) {
  Message* slots = arena.message_slots();
  std::uint8_t* bytes = arena.payload_slots();
  EdgeTally* edges = planner.edge_tallies();
  for (const NodeId u : sender_order) {
    const std::size_t edge_base = planner.out_base(u);
    for (const SimSend& send : outboxes[static_cast<std::size_t>(u)]) {
      EdgeTally& cursor = edges[edge_base + send.slot];
      const std::size_t slot_index = cursor.place_msg++;
      const std::size_t byte_index = cursor.place_byte;
      cursor.place_byte += send.payload.size();
      std::copy(send.payload.begin(), send.payload.end(), bytes + byte_index);
      slots[slot_index] =
          Message{u, send.to, bytes + byte_index, send.bit_count};
    }
  }
  std::vector<std::vector<Delivered>> inboxes(
      static_cast<std::size_t>(g.node_count()));
  for (NodeId v = 0; v < g.node_count(); ++v) {
    for (const Message& msg : arena.inbox(v)) {
      Delivered d;
      d.from = msg.from;
      d.to = msg.to;
      d.bit_count = msg.bit_count;
      d.payload.assign(msg.payload(), msg.payload() + msg.payload_bytes());
      inboxes[static_cast<std::size_t>(v)].push_back(std::move(d));
    }
  }
  return inboxes;
}

TEST(ArenaProperty, ShuffledPlacementOrderNeverChangesInboxContents) {
  Rng graph_rng(77);
  const Graph g = make_erdos_renyi(40, 0.15, graph_rng);
  const auto outboxes = make_outboxes(g, 1234);

  DeliveryPlanner planner(g, /*with_fault_buffers=*/false);
  RoundArena arena;
  tally(planner, outboxes);

  // Canonical placement: senders in ascending id order.
  std::vector<NodeId> order(static_cast<std::size_t>(g.node_count()));
  std::iota(order.begin(), order.end(), 0);
  planner.schedule(/*use_delivered=*/false, arena, nullptr);
  const auto golden = place_and_collect(g, planner, arena, outboxes, order);

  // The canonical receiver-side sequence: ascending sender id, and within a
  // sender, send order (pinned by payload equality below).
  for (NodeId v = 0; v < g.node_count(); ++v) {
    const auto& inbox = golden[static_cast<std::size_t>(v)];
    for (std::size_t i = 0; i + 1 < inbox.size(); ++i) {
      EXPECT_LE(inbox[i].from, inbox[i + 1].from) << "inbox of node " << v;
    }
    for (const Delivered& d : inbox) EXPECT_EQ(d.to, v);
  }

  // Any placement order lands every byte in the same slot.  schedule() is
  // re-run before each shuffle to reset the cursors from the same tallies.
  Rng shuffle_rng(4321);
  for (int trial = 0; trial < 12; ++trial) {
    for (std::size_t i = order.size(); i > 1; --i) {
      std::swap(order[i - 1],
                order[static_cast<std::size_t>(shuffle_rng.next_below(i))]);
    }
    planner.schedule(false, arena, nullptr);
    const auto got = place_and_collect(g, planner, arena, outboxes, order);
    ASSERT_EQ(got, golden) << "placement order changed inbox contents "
                              "(trial " << trial << ")";
  }
}

TEST(ArenaProperty, SliceGeometryPartitionsTheBuffersExactly) {
  Rng graph_rng(99);
  const Graph g = make_barabasi_albert(60, 3, graph_rng);
  const auto outboxes = make_outboxes(g, 567);

  DeliveryPlanner planner(g, false);
  RoundArena arena;
  tally(planner, outboxes);
  const DeliveryTotals totals = planner.schedule(false, arena, nullptr);

  std::size_t expect_msgs = 0, expect_bytes = 0;
  for (const auto& outbox : outboxes) {
    expect_msgs += outbox.size();
    for (const SimSend& send : outbox) expect_bytes += send.payload.size();
  }
  EXPECT_EQ(totals.messages, expect_msgs);
  EXPECT_EQ(totals.payload_bytes, expect_bytes);
  EXPECT_EQ(arena.message_count(), expect_msgs);
  EXPECT_EQ(arena.payload_byte_count(), expect_bytes);

  // Inbox slices tile [0, message_count) in node order: contiguous,
  // non-overlapping, nothing dropped.
  std::size_t cursor = 0;
  for (NodeId v = 0; v < g.node_count(); ++v) {
    const std::span<const Message> inbox = arena.inbox(v);
    if (!inbox.empty()) {
      EXPECT_EQ(inbox.data(), arena.message_slots() + cursor)
          << "inbox of node " << v << " does not start at the cursor";
    }
    cursor += inbox.size();
  }
  EXPECT_EQ(cursor, expect_msgs);
}

TEST(ArenaProperty, EmptyRoundSchedulesZeroEverything) {
  const Graph g = make_cycle(8);
  DeliveryPlanner planner(g, false);
  RoundArena arena;
  planner.zero_round(nullptr);
  const DeliveryTotals totals = planner.schedule(false, arena, nullptr);
  EXPECT_EQ(totals.messages, 0u);
  EXPECT_EQ(totals.payload_bytes, 0u);
  for (NodeId v = 0; v < g.node_count(); ++v) {
    EXPECT_TRUE(arena.inbox(v).empty());
  }
}

// --- 4. Scale: n = 20k through the full Network, serial vs pool ----------
//
// Every node floods an 8-bit token to all neighbours for a fixed number of
// rounds and folds every delivered (sender, payload) pair into a running
// digest.  The per-node digest vector is a complete receiver-side
// transcript: if the pool run's arena placement raced or re-ordered
// anything, some digest would differ.  This test is the workload the CI
// sanitizer job (ASan/TSan) runs at n = 20k.
class DigestNode final : public NodeProcess {
 public:
  static constexpr std::uint64_t kRounds = 6;

  void on_start(NodeContext&) override {}
  void on_round(NodeContext& ctx, std::span<const Message> inbox) override {
    for (const Message& msg : inbox) {
      std::uint64_t state =
          digest_ ^ static_cast<std::uint64_t>(msg.from) ^
          (msg.reader().read(8) << 32);
      digest_ = splitmix64(state);
    }
    if (ctx.round() < kRounds) {
      BitWriter w;
      w.write((static_cast<std::uint64_t>(ctx.id()) + ctx.round()) & 0xff, 8);
      for (NodeId nb : ctx.neighbors()) ctx.send(nb, w);
    } else {
      ctx.halt();
    }
  }

  std::uint64_t digest_ = 0;
};

struct ScaleRun {
  RunMetrics metrics;
  std::vector<std::uint64_t> digests;
};

ScaleRun run_scale(const Graph& g, int threads) {
  CongestConfig config;
  config.seed = 20;
  config.num_threads = threads;
  config.bit_floor = 16;
  Network net(g, config);
  net.set_all_nodes([](NodeId) { return std::make_unique<DigestNode>(); });
  ScaleRun run;
  run.metrics = net.run();
  run.digests.reserve(static_cast<std::size_t>(g.node_count()));
  for (NodeId v = 0; v < g.node_count(); ++v) {
    run.digests.push_back(static_cast<const DigestNode&>(net.node(v)).digest_);
  }
  return run;
}

TEST(ArenaScale, TwentyThousandNodesBitIdenticalSerialVsPool) {
  Rng rng(2024);
  const Graph g = make_watts_strogatz(20000, 4, 0.1, rng);
  const ScaleRun serial = run_scale(g, 0);
  EXPECT_EQ(serial.metrics.rounds, DigestNode::kRounds + 1);
  EXPECT_EQ(serial.metrics.total_messages,
            2 * g.edge_count() * DigestNode::kRounds);
  for (const int threads : {2, -1}) {
    const ScaleRun pooled = run_scale(g, threads);
    EXPECT_EQ(pooled.metrics.rounds, serial.metrics.rounds)
        << "threads=" << threads;
    EXPECT_EQ(pooled.metrics.total_bits, serial.metrics.total_bits)
        << "threads=" << threads;
    EXPECT_EQ(pooled.metrics.total_messages, serial.metrics.total_messages)
        << "threads=" << threads;
    ASSERT_EQ(pooled.digests, serial.digests) << "threads=" << threads;
  }
}

}  // namespace
}  // namespace rwbc
