// Serial-vs-parallel equivalence of the CONGEST simulator — the contract
// that makes CongestConfig::num_threads a pure wall-clock knob.
//
// The golden run is the serial scheduler (num_threads = 0).  For every
// graph family, seed, and thread count we assert the parallel scheduler
// reproduces it BIT-IDENTICALLY: betweenness scores and scaled visits
// (double ==, not approximate), every phase's RunMetrics field by field,
// and the full round_observer snapshot stream across all five pipeline
// phases.  Determinism holds because each node draws from its own
// Rng(seed, id) stream and the driver merges per-node send tallies in
// canonical node-id order — see DESIGN.md, "Deterministic parallel round
// execution".
#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <tuple>
#include <vector>

#include "common/rng.hpp"
#include "congest/network.hpp"
#include "graph/generators.hpp"
#include "graph/weighted.hpp"
#include "rwbc/distributed_alpha_cfb.hpp"
#include "rwbc/distributed_pagerank.hpp"
#include "rwbc/distributed_rwbc.hpp"
#include "rwbc/distributed_spbc.hpp"
#include "rwbc/sarma_walk.hpp"

namespace rwbc {
namespace {

// Thread counts the equivalence contract is checked at; -1 exercises the
// hardware_concurrency resolution path on whatever machine runs the tests.
const int kThreadCounts[] = {1, 2, 3, 8, -1};

// Adversarial seeds: both trivial values and dense bit patterns.
const std::uint64_t kSeeds[] = {0u, 1u, 0xdeadbeefULL,
                                0xffffffffffffffffULL};

Graph family_graph(const std::string& family, std::uint64_t seed) {
  Rng rng(seed ^ 0x9e3779b97f4a7c15ULL);
  if (family == "er") return make_erdos_renyi(14, 0.3, rng);
  if (family == "ba") return make_barabasi_albert(14, 2, rng);
  if (family == "ws") return make_watts_strogatz(14, 4, 0.3, rng);
  if (family == "grid") return make_grid(3, 5);
  if (family == "tree") return make_binary_tree(13);
  if (family == "barbell") return make_barbell(4, 3);
  if (family == "cycle") return make_cycle(14);
  throw std::runtime_error("unknown family " + family);
}

void expect_metrics_identical(const RunMetrics& golden, const RunMetrics& got,
                              const std::string& label) {
  EXPECT_EQ(golden.rounds, got.rounds) << label;
  EXPECT_EQ(golden.total_messages, got.total_messages) << label;
  EXPECT_EQ(golden.total_bits, got.total_bits) << label;
  EXPECT_EQ(golden.max_bits_per_edge_round, got.max_bits_per_edge_round)
      << label;
  EXPECT_EQ(golden.max_messages_per_edge_round,
            got.max_messages_per_edge_round)
      << label;
  EXPECT_EQ(golden.cut_bits, got.cut_bits) << label;
  EXPECT_EQ(golden.cut_messages, got.cut_messages) << label;
  EXPECT_EQ(golden.dropped_messages, got.dropped_messages) << label;
  EXPECT_EQ(golden.duplicated_messages, got.duplicated_messages) << label;
  EXPECT_EQ(golden.crashed_nodes, got.crashed_nodes) << label;
  EXPECT_EQ(golden.retransmissions, got.retransmissions) << label;
}

void expect_snapshots_identical(const std::vector<RoundSnapshot>& golden,
                                const std::vector<RoundSnapshot>& got,
                                const std::string& label) {
  ASSERT_EQ(golden.size(), got.size()) << label;
  for (std::size_t r = 0; r < golden.size(); ++r) {
    EXPECT_EQ(golden[r].round, got[r].round) << label << " r=" << r;
    EXPECT_EQ(golden[r].messages, got[r].messages) << label << " r=" << r;
    EXPECT_EQ(golden[r].bits, got[r].bits) << label << " r=" << r;
    EXPECT_EQ(golden[r].awake_nodes, got[r].awake_nodes)
        << label << " r=" << r;
    EXPECT_EQ(golden[r].dropped_messages, got[r].dropped_messages)
        << label << " r=" << r;
    EXPECT_EQ(golden[r].duplicated_messages, got[r].duplicated_messages)
        << label << " r=" << r;
    EXPECT_EQ(golden[r].crashed_nodes, got[r].crashed_nodes)
        << label << " r=" << r;
    EXPECT_EQ(golden[r].retransmissions, got[r].retransmissions)
        << label << " r=" << r;
  }
}

struct PipelineRun {
  DistributedRwbcResult result;
  std::vector<RoundSnapshot> snapshots;  // concatenated across all phases
};

template <typename GraphLike>
PipelineRun run_rwbc(const GraphLike& g, std::uint64_t seed, int threads) {
  PipelineRun run;
  DistributedRwbcOptions options;
  options.congest.seed = seed;
  options.congest.num_threads = threads;
  options.congest.round_observer = [&run](const RoundSnapshot& s) {
    run.snapshots.push_back(s);
  };
  run.result = distributed_rwbc(g, options);
  return run;
}

void expect_runs_identical(const PipelineRun& golden, const PipelineRun& got,
                           const std::string& label) {
  EXPECT_EQ(golden.result.leader, got.result.leader) << label;
  EXPECT_EQ(golden.result.target, got.result.target) << label;
  EXPECT_EQ(golden.result.params.cutoff, got.result.params.cutoff) << label;
  EXPECT_EQ(golden.result.params.walks_per_source,
            got.result.params.walks_per_source)
      << label;
  // Bit-identical outputs: exact double equality, no tolerance.
  EXPECT_EQ(golden.result.report.scores, got.result.report.scores) << label;
  EXPECT_EQ(golden.result.scaled_visits, got.result.scaled_visits) << label;
  expect_metrics_identical(golden.result.report.metrics, got.result.report.metrics,
                           label + " total");
  expect_metrics_identical(golden.result.election_metrics,
                           got.result.election_metrics, label + " election");
  expect_metrics_identical(golden.result.bfs_metrics, got.result.bfs_metrics,
                           label + " bfs");
  expect_metrics_identical(golden.result.dissemination_metrics,
                           got.result.dissemination_metrics,
                           label + " dissemination");
  expect_metrics_identical(golden.result.counting_metrics,
                           got.result.counting_metrics, label + " counting");
  expect_metrics_identical(golden.result.computing_metrics,
                           got.result.computing_metrics, label + " computing");
  expect_snapshots_identical(golden.snapshots, got.snapshots,
                             label + " snapshots");
}

using FamilySeed = std::tuple<const char*, std::uint64_t>;

class ParallelEquivalence : public ::testing::TestWithParam<FamilySeed> {};

TEST_P(ParallelEquivalence, UnweightedPipelineIsBitIdentical) {
  const auto& [family, seed] = GetParam();
  const Graph g = family_graph(family, seed);
  const PipelineRun golden = run_rwbc(g, seed, 0);
  for (int threads : kThreadCounts) {
    const PipelineRun got = run_rwbc(g, seed, threads);
    expect_runs_identical(golden, got,
                          std::string(family) + " threads=" +
                              std::to_string(threads));
  }
}

TEST_P(ParallelEquivalence, WeightedPipelineIsBitIdentical) {
  const auto& [family, seed] = GetParam();
  Rng wrng(seed + 17);
  const WeightedGraph wg =
      randomly_weighted(family_graph(family, seed), 5, wrng);
  const PipelineRun golden = run_rwbc(wg, seed, 0);
  for (int threads : kThreadCounts) {
    const PipelineRun got = run_rwbc(wg, seed, threads);
    expect_runs_identical(golden, got,
                          std::string(family) + " weighted threads=" +
                              std::to_string(threads));
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, ParallelEquivalence,
    ::testing::Combine(::testing::Values("er", "ba", "ws", "grid", "tree",
                                         "barbell", "cycle"),
                       ::testing::ValuesIn(kSeeds)),
    [](const auto& suite_info) {
      return std::string(std::get<0>(suite_info.param)) + "_s" +
             std::to_string(std::get<1>(suite_info.param) &
                            0xffffffffULL);
    });

// Fault injection must not break the serial-vs-parallel contract: every
// fault draw happens on the plan's dedicated RNG stream at the serial
// delivery merge point, so a faulty run — Bernoulli drops and duplications,
// a crash-stop mid-counting, and the self-healing transport retransmitting
// through all of it — reproduces bit-identically at every thread count:
// outputs, every metrics field (including the fault tallies), and the full
// snapshot stream.  This test also runs under RWBC_SANITIZE=thread in CI,
// putting the fault engine and reliability layer themselves under TSan.
PipelineRun run_faulty_rwbc(const Graph& g, int threads) {
  PipelineRun run;
  DistributedRwbcOptions options;
  options.congest.seed = 9;
  options.congest.num_threads = threads;
  options.congest.faults.seed = 77;
  options.congest.faults.drop_prob = 0.03;
  options.congest.faults.dup_prob = 0.01;
  options.congest.faults.crashes.push_back(CrashEvent{5, 40});
  options.reliable_transport = true;
  options.congest.round_observer = [&run](const RoundSnapshot& s) {
    run.snapshots.push_back(s);
  };
  run.result = distributed_rwbc(g, options);
  return run;
}

TEST(ParallelFaultEquivalence, FaultyPipelineIsBitIdentical) {
  Rng rng(9 ^ 0x9e3779b97f4a7c15ULL);
  const Graph g = make_erdos_renyi(14, 0.3, rng);
  const PipelineRun golden = run_faulty_rwbc(g, 0);
  EXPECT_GT(golden.result.report.metrics.dropped_messages, 0u);
  EXPECT_GT(golden.result.report.metrics.retransmissions, 0u);
  EXPECT_GE(golden.result.report.metrics.crashed_nodes, 1u);
  for (int threads : kThreadCounts) {
    const PipelineRun got = run_faulty_rwbc(g, threads);
    expect_runs_identical(golden, got,
                          "faulty threads=" + std::to_string(threads));
  }
}

// The sibling protocols share the simulator, so their equivalence is one
// cheap test each: identical outputs and total metrics across thread counts.

TEST(ParallelProtocolEquivalence, DistributedSpbc) {
  Rng rng(5);
  const Graph g = make_erdos_renyi(12, 0.35, rng);
  DistributedSpbcOptions options;
  options.congest.seed = 5;
  options.congest.bit_floor = 64;  // SPBC updates carry 2 log n + 30 bits
  const auto golden = distributed_spbc(g, options);
  for (int threads : kThreadCounts) {
    options.congest.num_threads = threads;
    const auto got = distributed_spbc(g, options);
    EXPECT_EQ(golden.report.scores, got.report.scores);
    expect_metrics_identical(golden.report.metrics, got.report.metrics,
                             "spbc threads=" + std::to_string(threads));
  }
}

TEST(ParallelProtocolEquivalence, DistributedPagerank) {
  Rng rng(6);
  const Graph g = make_barabasi_albert(24, 2, rng);
  DistributedPagerankOptions options;
  options.congest.seed = 6;
  const auto golden = distributed_pagerank(g, options);
  for (int threads : kThreadCounts) {
    options.congest.num_threads = threads;
    const auto got = distributed_pagerank(g, options);
    EXPECT_EQ(golden.report.scores, got.report.scores);
    expect_metrics_identical(golden.report.metrics, got.report.metrics,
                             "pagerank threads=" + std::to_string(threads));
  }
}

TEST(ParallelProtocolEquivalence, DistributedAlphaCfb) {
  Rng rng(7);
  const Graph g = make_watts_strogatz(16, 4, 0.2, rng);
  DistributedAlphaCfbOptions options;
  options.congest.seed = 7;
  const auto golden = distributed_alpha_cfb(g, options);
  for (int threads : kThreadCounts) {
    options.congest.num_threads = threads;
    const auto got = distributed_alpha_cfb(g, options);
    EXPECT_EQ(golden.report.scores, got.report.scores);
    EXPECT_EQ(golden.scaled_visits, got.scaled_visits);
    EXPECT_EQ(golden.capped_walks, got.capped_walks);
    expect_metrics_identical(golden.report.metrics, got.report.metrics,
                             "alpha threads=" + std::to_string(threads));
  }
}

TEST(ParallelProtocolEquivalence, SarmaWalk) {
  Rng rng(8);
  const Graph g = make_erdos_renyi(20, 0.25, rng);
  SarmaWalkOptions options;
  options.length = 64;
  options.congest.seed = 8;
  const auto golden = sarma_distributed_walk(g, 3, options);
  for (int threads : kThreadCounts) {
    options.congest.num_threads = threads;
    const auto got = sarma_distributed_walk(g, 3, options);
    EXPECT_EQ(golden.destination, got.destination);
    EXPECT_EQ(golden.stitches, got.stitches);
    EXPECT_EQ(golden.direct_steps, got.direct_steps);
    expect_metrics_identical(golden.report.metrics, got.report.metrics,
                             "sarma threads=" + std::to_string(threads));
  }
}

// Cut metering under threads: per-context cut tallies must merge to the
// serial numbers (barbell bridge carries all cross-bell traffic).
TEST(ParallelProtocolEquivalence, CutMeteringMatchesSerial) {
  const Graph g = make_barbell(5, 2);
  auto run_with = [&](int threads) {
    DistributedRwbcOptions options;
    options.congest.seed = 11;
    options.congest.num_threads = threads;
    options.congest.metered_cut = {Edge{4, 5}, Edge{6, 7}};
    return distributed_rwbc(g, options);
  };
  const auto golden = run_with(0);
  EXPECT_GT(golden.report.metrics.cut_messages, 0u);
  for (int threads : kThreadCounts) {
    const auto got = run_with(threads);
    EXPECT_EQ(golden.report.metrics.cut_bits, got.report.metrics.cut_bits);
    EXPECT_EQ(golden.report.metrics.cut_messages, got.report.metrics.cut_messages);
    EXPECT_EQ(golden.report.scores, got.report.scores);
  }
}

// Strict mode must keep throwing (an rwbc::Error, not a race or a torn
// metric) when nodes overrun the per-edge budget concurrently.
class ParallelFloodNode final : public NodeProcess {
 public:
  void on_start(NodeContext&) override {}
  void on_round(NodeContext& ctx, std::span<const Message>) override {
    if (ctx.round() == 0) {
      BitWriter w;
      for (int i = 0; i < 8; ++i) w.write(0xff, 8);  // 64 bits per send
      for (std::uint64_t burst = 0; burst * 64 <= ctx.bit_budget(); ++burst) {
        for (NodeId nb : ctx.neighbors()) ctx.send(nb, w);
      }
    }
    ctx.halt();
  }
};

TEST(ParallelStrictMode, BandwidthViolationStillThrowsUnderThreads) {
  const Graph g = make_complete(12);  // every node floods every edge
  for (int threads : kThreadCounts) {
    CongestConfig config;
    config.enforce_bandwidth = true;
    config.num_threads = threads;
    Network net(g, config);
    net.set_all_nodes(
        [](NodeId) { return std::make_unique<ParallelFloodNode>(); });
    EXPECT_THROW(net.run(), Error) << "threads=" << threads;
  }
}

TEST(ParallelStrictMode, IdealModeMetersIdenticallyUnderThreads) {
  const Graph g = make_cycle(10);
  auto run_with = [&](int threads) {
    CongestConfig config;
    config.enforce_bandwidth = false;
    config.num_threads = threads;
    Network net(g, config);
    net.set_all_nodes(
        [](NodeId) { return std::make_unique<ParallelFloodNode>(); });
    return net.run();
  };
  const RunMetrics golden = run_with(0);
  EXPECT_GT(golden.max_bits_per_edge_round, 0u);
  for (int threads : kThreadCounts) {
    expect_metrics_identical(golden, run_with(threads),
                             "ideal threads=" + std::to_string(threads));
  }
}

}  // namespace
}  // namespace rwbc
