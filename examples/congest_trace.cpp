// CONGEST cost anatomy: run the full distributed pipeline on a chosen
// topology and break the cost down phase by phase — rounds, messages, bits,
// and the peak per-edge traffic that Theorem 4 bounds.  Also runs the
// trivial gather-exact baseline and distributed PageRank on the same graph
// for the round-count comparison of Section II.
//
// Usage: congest_trace [family] [n] [seed]
//   family  path|cycle|star|grid|tree|barbell|complete|er|ba|ws (default ba)
//   n       approximate node count (default 64)
//   seed    simulation seed (default 1)
#include <cmath>
#include <cstdlib>
#include <iostream>
#include <string>

#include "common/rng.hpp"
#include "common/table.hpp"
#include "graph/generators.hpp"
#include "graph/properties.hpp"
#include "rwbc/distributed_pagerank.hpp"
#include "rwbc/distributed_rwbc.hpp"
#include "rwbc/distributed_spbc.hpp"
#include "rwbc/gather_exact.hpp"

namespace {

rwbc::Graph make_family(const std::string& family, rwbc::NodeId n,
                        rwbc::Rng& rng) {
  using namespace rwbc;
  if (family == "path") return make_path(n);
  if (family == "cycle") return make_cycle(n);
  if (family == "star") return make_star(n);
  if (family == "grid") {
    const auto side = static_cast<NodeId>(std::lround(std::sqrt(n)));
    return make_grid(side, side);
  }
  if (family == "tree") return make_binary_tree(n);
  if (family == "barbell") return make_barbell(n / 2, 2);
  if (family == "complete") return make_complete(n);
  if (family == "er") return make_erdos_renyi(n, 4.0 / n, rng);
  if (family == "ba") return make_barabasi_albert(n, 2, rng);
  if (family == "ws") return make_watts_strogatz(n, 4, 0.2, rng);
  throw rwbc::Error("unknown family: " + family);
}

std::vector<std::string> metrics_row(const std::string& phase,
                                     const rwbc::RunMetrics& m) {
  using rwbc::Table;
  return {phase, Table::fmt(m.rounds), Table::fmt(m.total_messages),
          Table::fmt(m.total_bits), Table::fmt(m.max_bits_per_edge_round)};
}

}  // namespace

int main(int argc, char** argv) {
  using namespace rwbc;
  const std::string family = argc > 1 ? argv[1] : "ba";
  const NodeId n = argc > 2 ? static_cast<NodeId>(std::atoi(argv[2])) : 64;
  const std::uint64_t seed =
      argc > 3 ? static_cast<std::uint64_t>(std::atoll(argv[3])) : 1;
  try {
    Rng rng(seed);
    const Graph g = make_family(family, n, rng);
    std::cout << "Topology: " << family << "  n = " << g.node_count()
              << "  m = " << g.edge_count() << "  D = " << diameter(g)
              << "\n\n";

    DistributedRwbcOptions options;  // theorem defaults: l = 2n, K = 4 log n
    options.congest.seed = seed;
    options.compute_scores = g.node_count() <= 256;
    const auto result = distributed_rwbc(g, options);

    std::cout << "Distributed RWBC (l = " << result.params.cutoff
              << ", K = " << result.params.walks_per_source
              << ", target = " << result.target << "):\n";
    Table phases({"phase", "rounds", "messages", "bits", "peak bits/edge"});
    phases.add_row(metrics_row("P0 leader election", result.election_metrics));
    phases.add_row(metrics_row("P1 BFS tree", result.bfs_metrics));
    phases.add_row(
        metrics_row("P2 height+target", result.dissemination_metrics));
    phases.add_row(metrics_row("P3 counting (Alg.1)",
                               result.counting_metrics));
    phases.add_row(metrics_row("P4 computing (Alg.2)",
                               result.computing_metrics));
    phases.add_row(metrics_row("total", result.report.metrics));
    phases.print(std::cout);

    Network probe(g, options.congest);
    std::cout << "\nCONGEST budget: " << probe.bit_budget()
              << " bits/edge/round; peak observed: "
              << result.report.metrics.max_bits_per_edge_round << " -> "
              << (result.report.metrics.max_bits_per_edge_round <= probe.bit_budget()
                      ? "COMPLIANT"
                      : "VIOLATION")
              << "\n";

    // Comparators.
    GatherExactOptions gather_options;
    gather_options.congest.seed = seed;
    const auto gather = gather_exact_rwbc(g, gather_options);
    DistributedPagerankOptions pr_options;
    pr_options.congest.seed = seed;
    const auto pagerank = distributed_pagerank(g, pr_options);

    std::cout << "\nRound-count comparison (Section I / II):\n";
    Table compare({"algorithm", "rounds", "asymptotic"});
    compare.add_row({"distributed RWBC (this paper)",
                     Table::fmt(result.report.metrics.rounds), "O(n log n)"});
    compare.add_row({"trivial gather-exact",
                     Table::fmt(gather.total.rounds), "O(m + D) [Theta(m) on bottlenecks]"});
    compare.add_row({"distributed PageRank",
                     Table::fmt(pagerank.report.metrics.rounds), "O(log n / eps)"});
    DistributedSpbcOptions spbc_options;
    spbc_options.congest.seed = seed;
    spbc_options.congest.bit_floor = 64;
    const auto spbc = distributed_spbc(g, spbc_options);
    compare.add_row({"distributed SPBC [5]", Table::fmt(spbc.report.metrics.rounds),
                     "O(n)"});
    compare.print(std::cout);
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 1;
  }
  return 0;
}
