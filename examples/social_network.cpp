// The paper's Fig. 1 story on a two-community "social network": node C sits
// on a parallel information route between the communities.  Shortest-path
// betweenness declares it irrelevant; random-walk betweenness (and the
// other flow-aware measures of Section II) recognise it.
//
// Usage: social_network [community_size] [edge_list_file]
//   community_size  nodes per community for the synthetic graph (default 6)
//   edge_list_file  optional: analyse your own graph instead ("n m" header
//                   + "u v" lines); the report then covers every node.
#include <cstdlib>
#include <iostream>
#include <string>

#include "centrality/alpha_cfb.hpp"
#include "centrality/brandes.hpp"
#include "centrality/current_flow_exact.hpp"
#include "centrality/flow_betweenness.hpp"
#include "centrality/pagerank.hpp"
#include "centrality/ranking.hpp"
#include "common/table.hpp"
#include "graph/generators.hpp"
#include "graph/io.hpp"
#include "graph/properties.hpp"

namespace {

void report(const rwbc::Graph& g, rwbc::NodeId highlight,
            const std::string& highlight_name) {
  using namespace rwbc;
  const auto spbc = brandes_betweenness(g);
  const auto rwbc_scores = current_flow_betweenness(g);
  const auto flow = flow_betweenness(g);
  const auto pr = pagerank_power(g);
  const auto acfb = alpha_current_flow_betweenness(g, 0.9);

  Table table({"node", "deg", "SP betweenness", "RW betweenness",
               "flow betweenness", "pagerank", "alpha-CFB (0.9)"});
  for (NodeId v = 0; v < g.node_count(); ++v) {
    const auto vi = static_cast<std::size_t>(v);
    std::string label = Table::fmt(v);
    if (v == highlight) label += " (" + highlight_name + ")";
    table.add_row({label, Table::fmt(g.degree(v)), Table::fmt(spbc[vi]),
                   Table::fmt(rwbc_scores[vi]), Table::fmt(flow[vi]),
                   Table::fmt(pr[vi]), Table::fmt(acfb[vi])});
  }
  table.print(std::cout);

  std::cout << "\nPairwise rank agreement (Kendall tau):\n"
            << "  SPBC  vs RWBC: " << kendall_tau(spbc, rwbc_scores) << "\n"
            << "  flow  vs RWBC: " << kendall_tau(flow, rwbc_scores) << "\n"
            << "  PR    vs RWBC: " << kendall_tau(pr, rwbc_scores) << "\n"
            << "  aCFB  vs RWBC: " << kendall_tau(acfb, rwbc_scores) << "\n";
}

}  // namespace

int main(int argc, char** argv) {
  using namespace rwbc;
  try {
    if (argc > 2) {
      const Graph g = load_edge_list(argv[2]);
      require_connected(g, "social_network example");
      std::cout << "Loaded " << argv[2] << ": n = " << g.node_count()
                << ", m = " << g.edge_count() << "\n\n";
      report(g, -1, "");
      return 0;
    }
    const NodeId group =
        argc > 1 ? static_cast<NodeId>(std::atoi(argv[1])) : 6;
    const Fig1Layout layout = make_fig1_graph(group);
    std::cout << "Two communities of " << group << " nodes; A = " << layout.a
              << " and B = " << layout.b << " bridge them; C = " << layout.c
              << " sits on the parallel A-C-B path.\n\n";
    report(layout.graph, layout.c, "C");

    const auto spbc = brandes_betweenness(layout.graph);
    const auto rw = current_flow_betweenness(layout.graph);
    const auto ci = static_cast<std::size_t>(layout.c);
    std::cout << "\nThe paper's Fig. 1 claim, reproduced:\n"
              << "  C's shortest-path betweenness: " << spbc[ci]
              << "  (no shortest path ever uses C)\n"
              << "  C's random-walk betweenness:   " << rw[ci]
              << "  (information that wanders does use C)\n";
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 1;
  }
  return 0;
}
