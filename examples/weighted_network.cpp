// Weighted (conductance) networks: when links have capacities, random-walk
// betweenness follows the conductance, not just the topology.
//
// The demo builds a ring with one "superhighway" arc (weight w on two
// consecutive edges, weight 1 elsewhere) and shows how the heavy arc's
// midpoint overtakes topologically identical nodes as w grows — first with
// the exact weighted solver, then with the distributed CONGEST pipeline.
//
// Usage: weighted_network [n] [w] [seed]
//   n     ring size (default 10)
//   w     superhighway weight, integer >= 1 (default 8)
//   seed  simulation seed (default 1)
#include <cstdlib>
#include <iostream>

#include "centrality/current_flow_weighted.hpp"
#include "common/stats.hpp"
#include "common/table.hpp"
#include "graph/generators.hpp"
#include "graph/weighted.hpp"
#include "rwbc/distributed_rwbc.hpp"

int main(int argc, char** argv) {
  using namespace rwbc;
  const NodeId n = argc > 1 ? static_cast<NodeId>(std::atoi(argv[1])) : 10;
  const double w = argc > 2 ? std::atof(argv[2]) : 8.0;
  const std::uint64_t seed =
      argc > 3 ? static_cast<std::uint64_t>(std::atoll(argv[3])) : 1;
  try {
    const Graph ring = make_cycle(n);
    // Canonical edge order of C_n: (0,1), (0,n-1), (1,2), (2,3), ...
    // Make the arc 0-1-2 the superhighway.
    std::vector<double> weights(ring.edge_count(), 1.0);
    weights[0] = w;  // (0,1)
    weights[2] = w;  // (1,2)
    const WeightedGraph wg(ring, weights);

    std::cout << "Ring of " << n << " nodes; edges (0,1) and (1,2) carry "
              << "conductance " << w << ", the rest 1.\n\n";

    const auto exact = current_flow_betweenness(wg);
    const auto uniform = current_flow_betweenness(
        WeightedGraph::uniform(ring));

    DistributedRwbcOptions options;
    options.walks_per_source = 4000;
    options.cutoff = 60 * static_cast<std::size_t>(n);
    options.congest.seed = seed;
    options.congest.bit_floor = 128;
    const auto distributed = distributed_rwbc(wg, options);

    Table table({"node", "strength", "RWBC (w=1)", "RWBC (weighted, exact)",
                 "RWBC (weighted, distributed)"});
    for (NodeId v = 0; v < n; ++v) {
      const auto vi = static_cast<std::size_t>(v);
      table.add_row({Table::fmt(v), Table::fmt(wg.strength(v), 0),
                     Table::fmt(uniform[vi]), Table::fmt(exact[vi]),
                     Table::fmt(distributed.report.scores[vi])});
    }
    table.print(std::cout);

    std::cout << "\nOn the unweighted ring every node is equivalent; the "
                 "superhighway midpoint (node 1)\nnow scores "
              << exact[1] / uniform[1]
              << "x its uniform value because walks preferentially route "
                 "through it.\n"
              << "Distributed run: " << distributed.report.metrics.rounds
              << " rounds, max rel err vs exact = "
              << max_relative_error(exact, distributed.report.scores) << "\n";
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 1;
  }
  return 0;
}
