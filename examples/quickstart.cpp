// Quickstart: compute random-walk betweenness three ways on one graph.
//
//   1. Exact (Newman's matrix expressions, Section IV)
//   2. The paper's distributed CONGEST algorithm (Algorithms 1 + 2)
//   3. The centralized Monte-Carlo control arm
//
// Usage: quickstart [n] [p] [seed]
//   n     nodes of the random graph            (default 24)
//   p     Erdos-Renyi edge probability         (default 0.25)
//   seed  RNG seed for graph + simulation      (default 1)
#include <cstdlib>
#include <iostream>

#include "centrality/current_flow_exact.hpp"
#include "centrality/current_flow_mc.hpp"
#include "centrality/ranking.hpp"
#include "common/rng.hpp"
#include "common/stats.hpp"
#include "common/table.hpp"
#include "graph/generators.hpp"
#include "graph/properties.hpp"
#include "rwbc/distributed_rwbc.hpp"

int main(int argc, char** argv) {
  using namespace rwbc;
  const NodeId n = argc > 1 ? static_cast<NodeId>(std::atoi(argv[1])) : 24;
  const double p = argc > 2 ? std::atof(argv[2]) : 0.25;
  const std::uint64_t seed = argc > 3
                                 ? static_cast<std::uint64_t>(std::atoll(argv[3]))
                                 : 1;
  try {
    Rng rng(seed);
    const Graph g = make_erdos_renyi(n, p, rng);
    std::cout << "Graph: n = " << g.node_count() << ", m = " << g.edge_count()
              << ", diameter = " << diameter(g) << "\n\n";

    // 1. Ground truth.
    const auto exact = current_flow_betweenness(g);

    // 2. The paper's pipeline, with the theorem defaults l = 2n,
    //    K = 4 log2 n scaled up a little for a cleaner demo.
    DistributedRwbcOptions options;
    options.walks_per_source = 32 * default_walks_per_source(g.node_count());
    options.cutoff = 8 * static_cast<std::size_t>(g.node_count());
    options.congest.seed = seed;
    options.congest.bit_floor = 64;  // K beyond O(log n) widens counts
    const auto distributed = distributed_rwbc(g, options);

    // 3. Same estimator without a network.
    McOptions mc_options;
    mc_options.walks_per_source = options.walks_per_source;
    mc_options.cutoff = options.cutoff;
    mc_options.target = distributed.target;
    mc_options.seed = seed + 1;
    const auto mc = current_flow_betweenness_mc(g, mc_options);

    Table table({"node", "deg", "exact", "distributed", "centralized MC"});
    for (NodeId v = 0; v < g.node_count(); ++v) {
      const auto vi = static_cast<std::size_t>(v);
      table.add_row({Table::fmt(v), Table::fmt(g.degree(v)),
                     Table::fmt(exact[vi]),
                     Table::fmt(distributed.report.scores[vi]),
                     Table::fmt(mc.betweenness[vi])});
    }
    table.print(std::cout);

    std::cout << "\nDistributed run: target = " << distributed.target
              << ", l = " << distributed.params.cutoff
              << ", K = " << distributed.params.walks_per_source << "\n"
              << "rounds = " << distributed.report.metrics.rounds << " ("
              << distributed.counting_metrics.rounds << " counting, "
              << distributed.computing_metrics.rounds << " computing)\n"
              << "max bits/edge/round = "
              << distributed.report.metrics.max_bits_per_edge_round << "\n"
              << "max relative error vs exact = "
              << max_relative_error(exact, distributed.report.scores) << "\n"
              << "Kendall tau vs exact = "
              << kendall_tau(exact, distributed.report.scores) << "\n";
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 1;
  }
  return 0;
}
