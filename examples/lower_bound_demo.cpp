// The Section VIII lower bound, made tangible: wire set-disjointness
// instances into the Fig. 2 gadget, show that node P's exact betweenness
// separates disjoint from intersecting inputs (Lemma 4), and meter how many
// bits the distributed algorithm pushes across the Alice/Bob cut versus the
// Omega(N log N) communication bound (Theorem 8).
//
// Usage: lower_bound_demo [rails] [family_size] [seeds]
//   rails        M, even (default 6)
//   family_size  N subsets per side (default 3)
//   seeds        instances per class (default 4)
#include <cstdlib>
#include <iostream>

#include "centrality/current_flow_exact.hpp"
#include "common/rng.hpp"
#include "common/table.hpp"
#include "lowerbound/disjointness.hpp"
#include "lowerbound/gadget.hpp"
#include "rwbc/distributed_rwbc.hpp"

int main(int argc, char** argv) {
  using namespace rwbc;
  const int rails = argc > 1 ? std::atoi(argv[1]) : 6;
  const int family = argc > 2 ? std::atoi(argv[2]) : 3;
  const int seeds = argc > 3 ? std::atoi(argv[3]) : 4;
  try {
    std::cout << "Gadget: M = " << rails << " rails, N = " << family
              << " subsets per side (n = " << 2 * rails + 2 * family + 3
              << " nodes). The Alice/Bob cut has " << rails + 1
              << " edges.\n\n";

    Table table({"instance", "disjoint?", "exact b_P", "cut bits",
                 "cut msgs", "DISJ bound (bits)"});
    double max_disjoint = -1e9, min_hit = 1e9;
    for (int s = 0; s < 2 * seeds; ++s) {
      Rng rng(static_cast<std::uint64_t>(s) + 1);
      const bool want_disjoint = s < seeds;
      const DisjointnessInstance instance =
          want_disjoint ? make_disjoint_instance(rails, family, rng)
                        : make_intersecting_instance(rails, family, rng);
      const GadgetLayout layout =
          build_disjointness_gadget(rails, instance.x, instance.y);

      const auto exact = current_flow_betweenness(layout.graph);
      const double b_p = exact[static_cast<std::size_t>(layout.p)];
      if (want_disjoint) {
        max_disjoint = std::max(max_disjoint, b_p);
      } else {
        min_hit = std::min(min_hit, b_p);
      }

      // Full distributed pipeline with the Alice/Bob cut metered end to end.
      DistributedRwbcOptions options;
      options.walks_per_source = 16;
      options.cutoff =
          2 * static_cast<std::size_t>(layout.graph.node_count());
      options.compute_scores = false;
      options.congest.seed = static_cast<std::uint64_t>(s) + 99;
      options.congest.metered_cut = gadget_cut_edges(layout);
      const auto result = distributed_rwbc(layout.graph, options);

      table.add_row({Table::fmt(s), want_disjoint ? "yes" : "no",
                     Table::fmt(b_p, 6), Table::fmt(result.report.metrics.cut_bits),
                     Table::fmt(result.report.metrics.cut_messages),
                     Table::fmt(disjointness_bits_lower_bound(family), 1)});
    }
    table.print(std::cout);
    std::cout << "\nLemma 4 separation: max b_P over disjoint instances = "
              << max_disjoint
              << "\n                    min b_P over intersecting = "
              << min_hit << "\n                    gap = "
              << (min_hit - max_disjoint)
              << (min_hit > max_disjoint ? "  (separated)" : "  (VIOLATED)")
              << "\n\nReading: any algorithm that decides b_P exactly must "
                 "move Omega(N log N)\nbits across those "
              << rails + 1
              << " cut edges; at O(log n) bits per edge per round that "
                 "forces\nOmega(n / log n) rounds (Theorem 6).\n";
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 1;
  }
  return 0;
}
